"""Tests for the fluent design builders."""

import pytest

from repro.errors import RTLValidationError
from repro.rtl.builder import DesignBuilder, ModuleBuilder
from repro.rtl.ir import Direction


class TestModuleBuilder:
    def test_inputs_accept_names_and_tuples(self):
        module = ModuleBuilder("m").inputs("clk", ("data", 16)).build()
        assert module.ports["clk"].width == 1
        assert module.ports["data"].width == 16
        assert module.ports["data"].direction is Direction.INPUT

    def test_outputs(self):
        module = ModuleBuilder("m").outputs(("y", 8)).build()
        assert module.ports["y"].direction is Direction.OUTPUT

    def test_instance_rejects_undeclared_net(self):
        builder = ModuleBuilder("m")
        builder.inputs("clk")
        with pytest.raises(RTLValidationError):
            builder.instance("u0", "DFF", d="missing_net")

    def test_instance_connects_declared_nets(self):
        builder = ModuleBuilder("m")
        builder.inputs("clk", "d").outputs("q")
        inst = builder.instance("u0", "DFF", clk="clk", d="d", q="q")
        assert inst.connections == {"clk": "clk", "d": "d", "q": "q"}

    def test_assign_rejects_undeclared(self):
        builder = ModuleBuilder("m").inputs("a")
        with pytest.raises(RTLValidationError):
            builder.assign("a", "ghost")

    def test_assign_ok(self):
        builder = ModuleBuilder("m")
        builder.inputs("a").outputs("y")
        module = builder.assign("y", "a").build()
        assert module.assigns[0].target == "y"

    def test_attribute(self):
        module = ModuleBuilder("m").attribute("role", "control").build()
        assert module.attributes["role"] == "control"

    def test_builder_closed_after_build(self):
        builder = ModuleBuilder("m")
        builder.build()
        with pytest.raises(RTLValidationError):
            builder.inputs("late")

    def test_nets_mixed_specs(self):
        builder = ModuleBuilder("m").nets("a", ("wide", 32))
        module = builder.build()
        assert module.nets["a"].width == 1
        assert module.nets["wide"].width == 32


class TestDesignBuilder:
    def test_module_auto_registers(self):
        db = DesignBuilder("d")
        db.module("child").build()
        design = db.top("child").build()
        assert design.has_module("child")
        assert design.top == "child"

    def test_add_prebuilt(self):
        db = DesignBuilder("d")
        module = ModuleBuilder("standalone").build()
        design = db.add(module).top("standalone").build()
        assert design.has_module("standalone")

    def test_duplicate_module_rejected(self):
        db = DesignBuilder("d")
        db.module("m")
        with pytest.raises(RTLValidationError):
            db.module("m")
