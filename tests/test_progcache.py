"""Decoded-program cache tests: hit/miss/eviction accounting, LRU order,
copy-on-return isolation, key separation, and the memoised call sites
(``ModelSpec.program`` and ``build_scaleout_programs``)."""

import pytest

from repro.accel.codegen import build_scaleout_programs
from repro.isa.instructions import halt, v_fill
from repro.isa.program import Program
from repro.isa.progcache import PROGRAM_CACHE, ProgramCache, program_cache_key
from repro.perf.profiling import PROFILER
from repro.workloads.deepbench import model_by_key


@pytest.fixture(autouse=True)
def _clean_global_cache():
    """Tests share the process-wide cache; keep their counters isolated."""
    PROGRAM_CACHE.clear()
    PROGRAM_CACHE.reset_stats()
    yield
    PROGRAM_CACHE.clear()
    PROGRAM_CACHE.reset_stats()


def _program(tag: str) -> Program:
    return Program([v_fill(0, 1.0, 4), halt()], name=tag)


def _key(**overrides) -> tuple:
    base = dict(kind="gru", hidden=32, input_dim=32, timesteps=4)
    base.update(overrides)
    return program_cache_key(**base)


class TestProgramCache:
    def test_miss_then_hit(self):
        cache = ProgramCache()
        builds = []

        def builder():
            builds.append(1)
            return _program("a")

        first = cache.get(_key(), builder)
        second = cache.get(_key(), builder)
        assert len(builds) == 1
        assert cache.hits == 1 and cache.misses == 1
        assert first.name == second.name == "a"

    def test_profiler_counters(self):
        before_hit = PROFILER.get("progcache.hit")
        before_miss = PROFILER.get("progcache.miss")
        cache = ProgramCache()
        cache.get(_key(), lambda: _program("a"))
        cache.get(_key(), lambda: _program("a"))
        assert PROFILER.get("progcache.miss") == before_miss + 1
        assert PROFILER.get("progcache.hit") == before_hit + 1

    def test_returned_copy_is_isolated(self):
        cache = ProgramCache()
        got = cache.get(_key(), lambda: _program("a"))
        got.instructions.append(halt())
        got.metadata["poison"] = True
        again = cache.get(_key(), lambda: _program("never"))
        assert len(again.instructions) == 2
        assert "poison" not in again.metadata

    def test_copy_false_returns_shared_object(self):
        cache = ProgramCache()
        first = cache.get(_key(), lambda: _program("a"), copy=False)
        second = cache.get(_key(), lambda: _program("a"), copy=False)
        assert first is second

    def test_lru_eviction(self):
        cache = ProgramCache(capacity=2)
        cache.get(_key(hidden=1), lambda: _program("a"))
        cache.get(_key(hidden=2), lambda: _program("b"))
        # Touch "a" so "b" is the least recently used.
        cache.get(_key(hidden=1), lambda: _program("a"))
        cache.get(_key(hidden=3), lambda: _program("c"))
        assert cache.evictions == 1
        assert _key(hidden=1) in cache and _key(hidden=3) in cache
        assert _key(hidden=2) not in cache
        assert len(cache) == 2

    def test_stats_shape(self):
        cache = ProgramCache(capacity=8)
        cache.get(_key(), lambda: _program("a"))
        stats = cache.stats()
        assert stats == {
            "hits": 0,
            "misses": 1,
            "evictions": 0,
            "entries": 1,
            "capacity": 8,
        }

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            ProgramCache(capacity=0)

    def test_clear_and_reset(self):
        cache = ProgramCache()
        cache.get(_key(), lambda: _program("a"))
        cache.clear()
        cache.reset_stats()
        assert len(cache) == 0 and cache.stats()["misses"] == 0


class TestCacheKey:
    def test_distinct_configs_distinct_keys(self):
        base = _key()
        assert _key(hidden=64) != base
        assert _key(timesteps=8) != base
        assert _key(replicas=2) != base
        assert _key(replica_index=1, replicas=2) != _key(replicas=2)
        assert _key(mantissa_bits=4) != base
        assert _key(block_size=32) != base
        assert _key(reorder=False) != base

    def test_stage_separates_pipeline_products(self):
        """The raw codegen template and the comm-inserted scale-out program
        of the same configuration must never collide."""
        assert _key(stage="template") != _key(stage="scaleout")


class TestMemoisedCallSites:
    def test_model_spec_program_cached(self):
        spec = model_by_key("gru-h512-t1")
        first = spec.program()
        assert PROGRAM_CACHE.misses == 1
        second = spec.program()
        assert PROGRAM_CACHE.hits == 1
        assert [str(i) for i in first.instructions] == [
            str(i) for i in second.instructions
        ]
        # The shallow copy keeps the cached artifact safe from mutation.
        second.instructions.clear()
        assert len(spec.program().instructions) == len(first.instructions)

    def test_replica_programs_cached_separately(self):
        spec = model_by_key("gru-h512-t1")
        spec.program(replicas=2, replica_index=0)
        spec.program(replicas=2, replica_index=1)
        assert PROGRAM_CACHE.misses == 2
        spec.program(replicas=2, replica_index=0)
        assert PROGRAM_CACHE.hits == 1

    def test_build_scaleout_programs_cached(self, gru_small):
        weights, xs = gru_small
        t = xs.shape[0]
        first = build_scaleout_programs("gru", weights, t, 2)
        assert PROGRAM_CACHE.misses == 2 and PROGRAM_CACHE.hits == 0
        second = build_scaleout_programs("gru", weights, t, 2)
        assert PROGRAM_CACHE.hits == 2
        for a, b in zip(first, second):
            assert [str(i) for i in a.instructions] == [
                str(i) for i in b.instructions
            ]
