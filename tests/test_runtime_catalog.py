"""Catalog (mapping database) tests."""

import pytest

from repro.errors import ReproError
from repro.runtime import Catalog
from repro.vital import VitalCompiler
from repro.workloads.deepbench import ModelSpec


@pytest.fixture(scope="module")
def catalog():
    return Catalog(VitalCompiler())


class TestEntries:
    def test_small_model_single_fpga_plan(self, catalog):
        entry = catalog.entry(ModelSpec("gru", 512, 1))
        assert entry.min_replicas() == 1
        plan = entry.sorted_plans()[0]
        assert set(plan.feasible_types) == {"XCVU37P", "XCKU115"}

    def test_large_model_two_fpga_only(self, catalog):
        entry = catalog.entry(ModelSpec("gru", 2560, 10))
        assert entry.min_replicas() == 2

    def test_gru2304_feasible_on_both_types(self, catalog):
        entry = catalog.entry(ModelSpec("gru", 2304, 10))
        plan = entry.sorted_plans()[0]
        assert plan.replicas == 2
        assert set(plan.feasible_types) == {"XCVU37P", "XCKU115"}

    def test_lstm1536_v37_only(self, catalog):
        entry = catalog.entry(ModelSpec("lstm", 1536, 50))
        single = entry.sorted_plans()[0]
        assert single.replicas == 1
        assert single.feasible_types == ["XCVU37P"]

    def test_plans_sorted_fewest_first(self, catalog):
        entry = catalog.entry(ModelSpec("gru", 1536, 10))
        replica_counts = [plan.replicas for plan in entry.sorted_plans()]
        assert replica_counts == sorted(replica_counts)

    def test_programs_per_replica(self, catalog):
        entry = catalog.entry(ModelSpec("gru", 1024, 10))
        for plan in entry.plans:
            assert len(plan.programs) == plan.replicas

    def test_multi_replica_programs_have_sync(self, catalog):
        entry = catalog.entry(ModelSpec("gru", 2560, 10))
        plan = entry.sorted_plans()[0]
        for program in plan.programs:
            assert program.sync_instructions()

    def test_image_for_unknown_type(self, catalog):
        entry = catalog.entry(ModelSpec("lstm", 1536, 50))
        with pytest.raises(ReproError):
            entry.sorted_plans()[0].image_for("XCKU115")

    def test_entry_cached(self, catalog):
        first = catalog.entry(ModelSpec("gru", 512, 1))
        second = catalog.entry(ModelSpec("gru", 512, 1))
        assert first is second


class TestInstanceReuse:
    def test_designs_deduped_by_tiles_and_device(self):
        catalog = Catalog(VitalCompiler())
        catalog.entry(ModelSpec("gru", 512, 1))
        count_after_one = catalog.instance_count()
        # An LSTM with similar storage demand reuses the same instance size.
        catalog.entry(ModelSpec("gru", 512, 25))
        assert catalog.instance_count() == count_after_one

    def test_bitstream_cache_shared(self):
        compiler = VitalCompiler()
        catalog = Catalog(compiler)
        catalog.entry(ModelSpec("gru", 512, 1))
        misses_before = compiler.store.misses
        catalog.entry(ModelSpec("gru", 512, 100))  # same instance size
        assert compiler.store.misses == misses_before

    def test_virtual_block_counts_reasonable(self):
        catalog = Catalog(VitalCompiler())
        entry = catalog.entry(ModelSpec("lstm", 256, 150))
        plan = entry.sorted_plans()[0]
        image = plan.image_for("XCVU37P")
        assert 1 <= image.virtual_blocks <= 6  # small model, few blocks
