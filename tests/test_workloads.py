"""Workload tests: DeepBench specs, Table-1 compositions and arrivals."""

import pytest

from repro.errors import ReproError
from repro.workloads import (
    MODEL_POOL,
    TABLE1_COMPOSITIONS,
    TABLE4_BENCHMARKS,
    ModelSpec,
    WorkloadComposition,
    generate_workload,
    arrival_process,
    lognormal_arrivals,
    model_by_key,
    pareto_arrivals,
    poisson_arrivals,
    size_class_of,
    uniform_arrivals,
)
from repro.workloads.deepbench import all_models


class TestModelSpec:
    def test_key_format(self):
        assert ModelSpec("gru", 1024, 1500).key == "gru-h1024-t1500"

    def test_size_classes(self):
        assert size_class_of(512) == "S"
        assert size_class_of(1024) == "S"
        assert size_class_of(1025) == "M"
        assert size_class_of(2048) == "M"
        assert size_class_of(2049) == "L"

    def test_gates(self):
        assert ModelSpec("gru", 64, 1).gates == 3
        assert ModelSpec("lstm", 64, 1).gates == 4

    def test_unknown_kind(self):
        with pytest.raises(ReproError):
            ModelSpec("cnn", 64, 1)

    def test_parameter_count(self):
        spec = ModelSpec("gru", 64, 1, input_dim=32)
        assert spec.parameter_count == 3 * (64 * 32 + 64 * 64)

    def test_program_metadata(self):
        program = ModelSpec("lstm", 64, 7).program()
        assert program.metadata["model"] == "lstm"
        assert program.metadata["timesteps"] == 7

    def test_table4_benchmarks_match_paper(self):
        keys = [spec.key for spec in TABLE4_BENCHMARKS]
        assert keys == [
            "gru-h512-t1", "gru-h1024-t1500", "gru-h1536-t375",
            "lstm-h256-t150", "lstm-h512-t25", "lstm-h1024-t25",
            "lstm-h1536-t50",
        ]

    def test_pool_classes_consistent(self):
        for class_name, specs in MODEL_POOL.items():
            for spec in specs:
                assert spec.size_class == class_name

    def test_model_by_key_roundtrip(self):
        for spec in all_models():
            assert model_by_key(spec.key) == spec

    def test_model_by_key_unknown(self):
        with pytest.raises(ReproError):
            model_by_key("vgg-h224-t1")


class TestCompositions:
    def test_ten_sets(self):
        assert len(TABLE1_COMPOSITIONS) == 10

    def test_fractions_sum_to_one(self):
        for comp in TABLE1_COMPOSITIONS:
            assert comp.small + comp.medium + comp.large == pytest.approx(1.0)

    def test_table1_values(self):
        assert TABLE1_COMPOSITIONS[0].small == 1.0
        assert TABLE1_COMPOSITIONS[7].large == 0.60
        assert TABLE1_COMPOSITIONS[9].small == 0.60

    def test_bad_composition_rejected(self):
        with pytest.raises(ReproError):
            WorkloadComposition(99, 0.5, 0.5, 0.5)

    def test_describe(self):
        text = TABLE1_COMPOSITIONS[3].describe()
        assert "50% S" in text and "50% M" in text and "L" not in text


class TestGenerateWorkload:
    def test_deterministic_by_seed(self):
        a = generate_workload(TABLE1_COMPOSITIONS[6], 50, seed=3)
        b = generate_workload(TABLE1_COMPOSITIONS[6], 50, seed=3)
        assert [t.model_key for t in a] == [t.model_key for t in b]
        assert [t.arrival_s for t in a] == [t.arrival_s for t in b]

    def test_composition_respected(self):
        tasks = generate_workload(TABLE1_COMPOSITIONS[0], 100, seed=1)
        assert all(task.size_class == "S" for task in tasks)

    def test_mixed_composition_approximate(self):
        tasks = generate_workload(TABLE1_COMPOSITIONS[6], 600, seed=2)
        fractions = {
            cls: sum(1 for t in tasks if t.size_class == cls) / len(tasks)
            for cls in ("S", "M", "L")
        }
        assert fractions["S"] == pytest.approx(0.33, abs=0.08)
        assert fractions["L"] == pytest.approx(0.34, abs=0.08)

    def test_arrivals_increasing(self):
        tasks = generate_workload(TABLE1_COMPOSITIONS[6], 50, seed=4)
        arrivals = [t.arrival_s for t in tasks]
        assert arrivals == sorted(arrivals)

    def test_models_come_from_pool(self):
        tasks = generate_workload(TABLE1_COMPOSITIONS[6], 100, seed=5)
        pool_keys = {
            spec.key for specs in MODEL_POOL.values() for spec in specs
        }
        assert {task.model_key for task in tasks} <= pool_keys

    def test_zero_tasks_rejected(self):
        with pytest.raises(ReproError):
            generate_workload(TABLE1_COMPOSITIONS[0], 0)


class TestArrivals:
    def test_poisson_mean_rate(self):
        arrivals = poisson_arrivals(4000, rate_per_s=100.0, seed=0)
        mean_gap = arrivals[-1] / len(arrivals)
        assert mean_gap == pytest.approx(0.01, rel=0.1)

    def test_uniform_mean_rate(self):
        arrivals = uniform_arrivals(4000, rate_per_s=100.0, seed=0)
        mean_gap = arrivals[-1] / len(arrivals)
        assert mean_gap == pytest.approx(0.01, rel=0.1)

    def test_monotone(self):
        arrivals = poisson_arrivals(100, 10.0, seed=1)
        assert all(b >= a for a, b in zip(arrivals, arrivals[1:]))

    def test_invalid_args(self):
        with pytest.raises(ReproError):
            poisson_arrivals(0, 1.0)
        with pytest.raises(ReproError):
            uniform_arrivals(10, 0.0)

    def test_pareto_mean_rate(self):
        arrivals = pareto_arrivals(4000, rate_per_s=100.0, seed=0)
        mean_gap = arrivals[-1] / len(arrivals)
        assert mean_gap == pytest.approx(0.01, rel=0.15)

    def test_pareto_is_heavy_tailed(self):
        # Same mean rate, but the largest gap dwarfs the median gap by
        # far more than an exponential's tail would allow.
        arrivals = pareto_arrivals(4000, rate_per_s=100.0, seed=0)
        gaps = sorted(
            b - a for a, b in zip(arrivals, arrivals[1:])
        )
        assert gaps[-1] / gaps[len(gaps) // 2] > 20.0

    def test_pareto_rejects_shape_without_mean(self):
        with pytest.raises(ReproError):
            pareto_arrivals(10, 100.0, shape=1.0)

    def test_lognormal_mean_rate(self):
        arrivals = lognormal_arrivals(4000, rate_per_s=100.0, seed=0)
        mean_gap = arrivals[-1] / len(arrivals)
        assert mean_gap == pytest.approx(0.01, rel=0.15)

    def test_heavy_tail_monotone_and_deterministic(self):
        for factory in (pareto_arrivals, lognormal_arrivals):
            a = factory(200, 50.0, seed=3)
            b = factory(200, 50.0, seed=3)
            assert a == b
            assert all(y >= x for x, y in zip(a, a[1:]))

    def test_arrival_process_registry(self):
        assert arrival_process("pareto") is pareto_arrivals
        assert arrival_process("poisson") is poisson_arrivals
        with pytest.raises(ReproError):
            arrival_process("fractal")


class TestTracePersistence:
    def test_roundtrip(self, tmp_path):
        from repro.workloads.synthetic import load_trace, save_trace

        tasks = generate_workload(TABLE1_COMPOSITIONS[6], 30, seed=8)
        path = tmp_path / "trace.json"
        save_trace(tasks, path)
        loaded = load_trace(path)
        assert [t.model_key for t in loaded] == [t.model_key for t in tasks]
        assert [t.arrival_s for t in loaded] == [t.arrival_s for t in tasks]
        assert [t.size_class for t in loaded] == [t.size_class for t in tasks]

    def test_version_check(self, tmp_path):
        from repro.workloads.synthetic import load_trace

        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "tasks": []}')
        with pytest.raises(ReproError):
            load_trace(path)

    def test_loaded_trace_runs(self, tmp_path):
        from repro.cluster import ClusterSimulator
        from repro.runtime import Catalog, build_system
        from repro.vital import VitalCompiler
        from repro.cluster import paper_cluster
        from repro.workloads.synthetic import load_trace, save_trace

        tasks = generate_workload(TABLE1_COMPOSITIONS[0], 20, seed=3)
        path = tmp_path / "trace.json"
        save_trace(tasks, path)
        system = build_system("proposed", paper_cluster(), Catalog(VitalCompiler()))
        result = ClusterSimulator(system, "proposed").run(load_trace(path))
        assert len(result.completed) == 20
