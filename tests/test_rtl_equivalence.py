"""Tests for structural equivalence checking — the mechanism behind
data-parallelism detection (paper Fig. 4a/4b)."""

import pytest

from repro.rtl.builder import DesignBuilder
from repro.rtl.equivalence import (
    clear_signature_cache,
    modules_equivalent,
    structural_signature,
)


def _two_stage_module(db, name, cell="FP16_ADD"):
    m = db.module(name)
    m.inputs("clk", ("a", 16)).outputs(("y", 16))
    m.net("mid", 16)
    m.instance("u0", cell, clk="clk", a="a", y="mid")
    m.instance("u1", cell, clk="clk", a="mid", y="y")
    return m.build()


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_signature_cache()
    yield
    clear_signature_cache()


class TestSignatures:
    def test_same_module_same_signature(self):
        db = DesignBuilder("d")
        _two_stage_module(db, "m")
        design = db.top("m").build()
        assert structural_signature(design, "m") == structural_signature(
            design, "m"
        )

    def test_identical_structure_different_names(self):
        db = DesignBuilder("d")
        _two_stage_module(db, "alpha")
        _two_stage_module(db, "beta")
        design = db.top("alpha").build()
        assert structural_signature(design, "alpha") == structural_signature(
            design, "beta"
        )

    def test_different_cells_differ(self):
        db = DesignBuilder("d")
        _two_stage_module(db, "adds", cell="FP16_ADD")
        _two_stage_module(db, "muls", cell="FP16_MUL")
        design = db.top("adds").build()
        assert structural_signature(design, "adds") != structural_signature(
            design, "muls"
        )

    def test_different_connectivity_differs(self):
        db = DesignBuilder("d")
        _two_stage_module(db, "chain")
        m = db.module("parallel")
        m.inputs("clk", ("a", 16)).outputs(("y", 16))
        m.net("mid", 16)
        m.instance("u0", "FP16_ADD", clk="clk", a="a", y="mid")
        m.instance("u1", "FP16_ADD", clk="clk", a="a", y="y")
        m.build()
        design = db.top("chain").build()
        assert structural_signature(design, "chain") != structural_signature(
            design, "parallel"
        )

    def test_interface_width_matters(self):
        db = DesignBuilder("d")
        m = db.module("narrow")
        m.inputs(("a", 8)).outputs(("y", 8))
        m.build()
        m = db.module("wide")
        m.inputs(("a", 16)).outputs(("y", 16))
        m.build()
        design = db.top("narrow").build()
        assert structural_signature(design, "narrow") != structural_signature(
            design, "wide"
        )

    def test_port_names_abstracted(self):
        db = DesignBuilder("d")
        m = db.module("p")
        m.inputs(("left", 8)).outputs(("out", 8))
        m.build()
        m = db.module("q")
        m.inputs(("right", 8)).outputs(("res", 8))
        m.build()
        design = db.top("p").build()
        assert structural_signature(design, "p") == structural_signature(
            design, "q"
        )

    def test_equiv_class_attribute_separates(self):
        db = DesignBuilder("d")
        m = db.module("a1")
        m.attribute("equiv_class", "one")
        m.build()
        m = db.module("a2")
        m.attribute("equiv_class", "two")
        m.build()
        design = db.top("a1").build()
        assert structural_signature(design, "a1") != structural_signature(
            design, "a2"
        )

    def test_cache_survives_design_address_reuse(self):
        # The cache must key on Design.uid, not id(design): CPython
        # recycles addresses of collected objects, and an id-keyed cache
        # let a fresh design inherit a dead design's signatures (a rare
        # allocation-order-dependent flake in the determinism tests).
        from repro.rtl.equivalence import _signature_cache

        db = DesignBuilder("d1")
        _two_stage_module(db, "m", cell="FP16_ADD")
        first = db.top("m").build()
        sig_add = structural_signature(first, "m")
        uid_first = first.uid
        del first
        db = DesignBuilder("d2")
        _two_stage_module(db, "m", cell="FP16_MUL")
        second = db.top("m").build()
        # Even if the new design lands on the recycled address, its uid —
        # and therefore its cache row — is fresh.
        assert second.uid != uid_first
        assert structural_signature(second, "m") != sig_add
        assert (second.uid, "m") in _signature_cache

    def test_primitive_signature(self):
        db = DesignBuilder("d")
        db.module("m").build()
        design = db.top("m").build()
        assert structural_signature(design, "DFF") == "cell:DFF"


class TestModulesEquivalent:
    def test_reflexive(self, mini_design):
        assert modules_equivalent(mini_design, "lane", "lane")

    def test_structural_copies(self):
        db = DesignBuilder("d")
        _two_stage_module(db, "alpha")
        _two_stage_module(db, "beta")
        design = db.top("alpha").build()
        assert modules_equivalent(design, "alpha", "beta")

    def test_rejects_different(self, mini_design):
        assert not modules_equivalent(mini_design, "stage_a", "stage_b")

    def test_primitives_compare_by_name(self, mini_design):
        assert modules_equivalent(mini_design, "DFF", "DFF")
        assert not modules_equivalent(mini_design, "DFF", "DFFE")

    def test_module_vs_primitive(self, mini_design):
        assert not modules_equivalent(mini_design, "stage_a", "DFF")

    def test_hierarchical_equivalence(self):
        """Two wrappers over equivalent submodules are equivalent."""
        db = DesignBuilder("d")
        _two_stage_module(db, "inner_a")
        _two_stage_module(db, "inner_b")
        for name, inner in (("wrap_a", "inner_a"), ("wrap_b", "inner_b")):
            m = db.module(name)
            m.inputs("clk", ("a", 16)).outputs(("y", 16))
            m.instance("core", inner, clk="clk", a="a", y="y")
            m.build()
        design = db.top("wrap_a").build()
        assert modules_equivalent(design, "wrap_a", "wrap_b")
