"""RTL-generator tests: structure, resource calibration against Table 2,
and the decomposition contract of Section 3."""

import pytest

from repro.accel import BW_K115, BW_V37, CONTROL_MODULES, generate_accelerator
from repro.accel.generator import design_summary
from repro.rtl import design_resources, is_basic_module, validate_design
from repro.units import to_mbit


class TestStructure:
    def test_validates(self, small_accel_design):
        validate_design(small_accel_design)

    def test_top_has_one_lane_per_tile(self, small_accel_design, small_accel_config):
        top = small_accel_design.modules["top"]
        lanes = [
            inst for inst in top.instances.values()
            if inst.module_name == "compute_lane"
        ]
        assert len(lanes) == small_accel_config.tiles

    def test_control_modules_exist(self, small_accel_design):
        for name in CONTROL_MODULES:
            assert small_accel_design.has_module(name)

    def test_lane_stages_are_basic(self, small_accel_design):
        for name in ("weight_mem", "mac_array", "lane_acc", "mfu_slice"):
            assert is_basic_module(small_accel_design, name)

    def test_lane_is_hierarchical(self, small_accel_design):
        assert not is_basic_module(small_accel_design, "compute_lane")
        assert not is_basic_module(small_accel_design, "mvm_tile")

    def test_summary(self, small_accel_design):
        summary = design_summary(small_accel_design)
        assert summary["top"] == "top"
        assert summary["modules"] == len(small_accel_design.modules)


class TestResourceCalibration:
    """The generator's estimates must land near Table 2's published
    utilisation (within 15% — they are calibrated, not copied)."""

    def test_bw_v37_luts(self):
        demand = design_resources(generate_accelerator(BW_V37))
        assert demand.luts == pytest.approx(610e3, rel=0.15)

    def test_bw_v37_ffs(self):
        demand = design_resources(generate_accelerator(BW_V37))
        assert demand.ffs == pytest.approx(659e3, rel=0.15)

    def test_bw_v37_dsps(self):
        demand = design_resources(generate_accelerator(BW_V37))
        assert demand.dsps == pytest.approx(7517, rel=0.15)

    def test_bw_v37_bram(self):
        demand = design_resources(generate_accelerator(BW_V37))
        assert to_mbit(demand.bram_bits) == pytest.approx(51.5, rel=0.15)

    def test_bw_v37_uram(self):
        demand = design_resources(generate_accelerator(BW_V37))
        assert to_mbit(demand.uram_bits) == pytest.approx(22.5, rel=0.15)

    def test_bw_k115_no_uram(self):
        demand = design_resources(generate_accelerator(BW_K115))
        assert demand.uram_bits == 0

    def test_bw_k115_luts(self):
        demand = design_resources(generate_accelerator(BW_K115))
        assert demand.luts == pytest.approx(367e3, rel=0.25)

    def test_resources_scale_roughly_linearly_with_tiles(self):
        small = design_resources(generate_accelerator(BW_V37.with_tiles(5)))
        large = design_resources(generate_accelerator(BW_V37.with_tiles(10)))
        per_tile_small = small.dsps / 5
        per_tile_large = large.dsps / 10
        # Fixed control overhead means small instances cost more per tile.
        assert per_tile_small > per_tile_large
        assert large.dsps > small.dsps


class TestDeterminism:
    def test_same_config_same_design(self, small_accel_config):
        a = generate_accelerator(small_accel_config)
        b = generate_accelerator(small_accel_config)
        assert set(a.modules) == set(b.modules)
        assert design_resources(a) == design_resources(b)
