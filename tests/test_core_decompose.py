"""Decomposing-tool tests: the five-step flow on hand-built and generated
designs (paper Section 2.2.1)."""

import pytest

from repro.accel import BW_K115, BW_V37, CONTROL_MODULES, generate_accelerator
from repro.core import PatternKind, decompose
from repro.core.decompose import Decomposer
from repro.errors import DecomposeError
from repro.rtl import design_resources
from repro.rtl.builder import DesignBuilder


class TestControlDataSplit:
    def test_control_block_role(self, mini_decomposed):
        from repro.core import BlockRole

        assert mini_decomposed.control.role is BlockRole.CONTROL

    def test_control_collects_marked_instances(self, mini_decomposed):
        assert mini_decomposed.control.metadata["instances"] == ["dec"]

    def test_resources_conserved(self, mini_design, mini_decomposed):
        total = mini_decomposed.total_resources()
        assert list(total) == pytest.approx(list(design_resources(mini_design)))

    def test_missing_control_mark_raises(self, mini_design):
        with pytest.raises(DecomposeError, match="control"):
            decompose(mini_design, control_modules={"not_a_module"})

    def test_all_control_raises(self, mini_design):
        every = set(mini_design.modules)
        with pytest.raises(DecomposeError):
            decompose(mini_design, control_modules=every)

    def test_control_by_instance_path_segment(self, mini_design):
        # Marking by instance name also works (paths are matched).
        result = decompose(mini_design, control_modules={"dec"})
        assert result.control.metadata["instances"] == ["dec"]


class TestPatternExtraction:
    def test_mini_design_data_root(self, mini_decomposed):
        root = mini_decomposed.data_root
        assert root.kind is PatternKind.DATA
        assert len(root.children) == 4

    def test_lanes_are_pipelines(self, mini_decomposed):
        for lane in mini_decomposed.data_root.children:
            assert lane.kind is PatternKind.PIPELINE
            assert len(lane.children) == 3

    def test_scale_down_supported(self, mini_decomposed):
        assert mini_decomposed.supports_scale_down()
        assert mini_decomposed.root_pattern is PatternKind.DATA

    def test_pipeline_bandwidths_recorded(self, mini_decomposed):
        lane = mini_decomposed.data_root.children[0]
        # stage_a -> stage_b over a 32-bit net, stage_b -> stage_c over 24.
        assert lane.children[0].out_bits == 32
        assert lane.children[1].out_bits == 24

    def test_stats_counters(self, mini_decomposed):
        stats = mini_decomposed.stats
        assert stats.basic_blocks == 12  # 4 lanes x 3 stages
        assert stats.control_blocks == 1
        assert stats.pipeline_merges >= 1
        assert stats.data_merges >= 1
        assert stats.residual_roots == 1

    def test_pure_pipeline_design(self):
        db = DesignBuilder("chain")
        for name in ("s0", "s1", "s2"):
            m = db.module(name)
            m.inputs("clk", ("i", 8)).outputs(("o", 8))
            m.instance("g", "DFF", clk="clk")
            m.build()
        m = db.module("ctl")
        m.inputs("clk").outputs(("c", 4))
        m.instance("g", "DFF", clk="clk")
        m.build()
        m = db.module("top")
        m.inputs("clk", ("x", 8)).outputs(("y", 8))
        m.nets(("a", 8), ("b", 8), ("c", 4))
        m.instance("c0", "ctl", clk="clk", c="c")
        m.instance("u0", "s0", clk="clk", i="x", o="a")
        m.instance("u1", "s1", clk="clk", i="a", o="b")
        m.instance("u2", "s2", clk="clk", i="b", o="y")
        m.build()
        db.top("top")
        result = decompose(db.build(), control_modules={"ctl"})
        assert result.data_root.kind is PatternKind.PIPELINE
        assert len(result.data_root.children) == 3
        assert not result.supports_scale_down()

    def test_intra_block_lanes_extracted(self):
        """A basic module with equivalent independent components splits
        (paper Fig. 4a)."""
        db = DesignBuilder("intra")
        m = db.module("ctl")
        m.inputs("clk")
        m.instance("g", "DFF", clk="clk")
        m.build()
        m = db.module("simd")
        m.inputs("clk", ("v", 64)).outputs(("o", 64))
        for lane in range(4):
            m.net(f"mid{lane}", 16)
            m.instance(f"mul{lane}", "FP16_MUL", clk="clk", y=f"mid{lane}")
            m.instance(f"add{lane}", "FP16_ADD", clk="clk", a=f"mid{lane}")
        m.build()
        m = db.module("top")
        m.inputs("clk", ("v", 64)).outputs(("o", 64))
        m.instance("c", "ctl", clk="clk")
        m.instance("s", "simd", clk="clk", v="v", o="o")
        m.build()
        db.top("top")
        result = decompose(db.build(), control_modules={"ctl"})
        assert result.data_root.kind is PatternKind.DATA
        assert len(result.data_root.children) == 4
        assert result.stats.intra_block_splits == 1

    def test_intra_block_disabled(self):
        tool = Decomposer(extract_intra_block=False)
        db = DesignBuilder("intra2")
        m = db.module("ctl")
        m.inputs("clk")
        m.instance("g", "DFF", clk="clk")
        m.build()
        m = db.module("simd")
        m.inputs("clk")
        m.instance("a", "NOT")
        m.instance("b", "NOT")
        m.build()
        m = db.module("top")
        m.inputs("clk")
        m.instance("c", "ctl", clk="clk")
        m.instance("s", "simd", clk="clk")
        m.build()
        db.top("top")
        result = tool.decompose(db.build(), control_modules={"ctl"})
        assert result.stats.intra_block_splits == 0

    def test_heterogeneous_components_not_split(self):
        """Independent but non-equivalent components stay one leaf."""
        db = DesignBuilder("het")
        m = db.module("ctl")
        m.inputs("clk")
        m.instance("g", "DFF", clk="clk")
        m.build()
        m = db.module("mixed")
        m.inputs("clk")
        m.instance("a", "FP16_MUL", clk="clk")
        m.instance("b", "INT_ADD")
        m.build()
        m = db.module("top")
        m.inputs("clk")
        m.instance("c", "ctl", clk="clk")
        m.instance("s", "mixed", clk="clk")
        m.build()
        db.top("top")
        result = decompose(db.build(), control_modules={"ctl"})
        assert result.stats.intra_block_splits == 0


class TestGeneratedAccelerator:
    @pytest.mark.parametrize("tiles", [2, 5, 21])
    def test_v37_decomposes_to_data_root(self, tiles):
        config = BW_V37.with_tiles(tiles, name=f"t{tiles}")
        result = decompose(generate_accelerator(config), CONTROL_MODULES)
        assert result.data_root.kind is PatternKind.DATA
        assert len(result.data_root.children) == tiles
        assert result.supports_scale_down()

    def test_lane_pipeline_depth(self, small_accel_decomposed):
        lane = small_accel_decomposed.data_root.children[0]
        assert lane.kind is PatternKind.PIPELINE
        # weight_mem -> mac_array -> lane_acc -> mfu_slice
        assert len(lane.children) == 4

    def test_k115_instance(self):
        result = decompose(
            generate_accelerator(BW_K115.with_tiles(3, name="k3")),
            CONTROL_MODULES,
        )
        assert result.data_root.kind is PatternKind.DATA
        # K115 memory plan uses no URAM.
        assert result.data_root.resources().uram_bits == 0

    def test_lanes_structurally_equivalent(self, small_accel_decomposed):
        signatures = {
            child.signature
            for child in small_accel_decomposed.data_root.children
        }
        assert len(signatures) == 1

    def test_decomposition_deterministic(self, small_accel_config):
        a = decompose(generate_accelerator(small_accel_config), CONTROL_MODULES)
        b = decompose(generate_accelerator(small_accel_config), CONTROL_MODULES)
        assert a.data_root.signature == b.data_root.signature
        assert a.stats.basic_blocks == b.stats.basic_blocks


class TestEdgeCases:
    def test_empty_data_path_rejected(self):
        db = DesignBuilder("d")
        m = db.module("ctl")
        m.inputs("clk")
        m.instance("g", "DFF", clk="clk")
        m.build()
        m = db.module("top")
        m.inputs("clk")
        m.instance("c", "ctl", clk="clk")
        m.build()
        db.top("top")
        with pytest.raises(DecomposeError):
            decompose(db.build(), control_modules={"ctl"})

    def test_single_data_block(self):
        db = DesignBuilder("single")
        m = db.module("ctl")
        m.inputs("clk")
        m.instance("g", "DFF", clk="clk")
        m.build()
        m = db.module("worker")
        m.inputs("clk")
        m.instance("g", "FP16_MUL", clk="clk")
        m.build()
        m = db.module("top")
        m.inputs("clk")
        m.instance("c", "ctl", clk="clk")
        m.instance("w", "worker", clk="clk")
        m.build()
        db.top("top")
        result = decompose(db.build(), control_modules={"ctl"})
        assert result.data_root.kind is PatternKind.LEAF
