"""Tests for the three evaluated systems as simulator schedulers."""

import copy

import pytest

from repro.cluster import ClusterSimulator, Task, paper_cluster
from repro.runtime import Catalog, build_system
from repro.runtime.systems import BaselineSystem, ProposedSystem, RestrictedSystem
from repro.vital import VitalCompiler
from repro.workloads import generate_workload
from repro.workloads.synthetic import TABLE1_COMPOSITIONS
from repro.errors import ReproError


def _tasks(keys, gap=0.0):
    return [
        Task(task_id=i, model_key=key, arrival_s=i * gap, size_class="S")
        for i, key in enumerate(keys)
    ]


def _run(system, tasks):
    return ClusterSimulator(system, system.name).run(copy.deepcopy(tasks))


class TestFactory:
    def test_builds_each_system(self):
        cluster = paper_cluster()
        catalog = Catalog(VitalCompiler())
        assert isinstance(build_system("baseline", cluster), BaselineSystem)
        assert isinstance(
            build_system("proposed", cluster, catalog), ProposedSystem
        )
        assert isinstance(
            build_system("restricted", cluster, catalog), RestrictedSystem
        )

    def test_unknown_system(self):
        with pytest.raises(ReproError):
            build_system("magic", paper_cluster(), Catalog(VitalCompiler()))

    def test_proposed_without_catalog(self):
        with pytest.raises(ReproError):
            build_system("proposed", paper_cluster())


class TestProposedSystem:
    def test_completes_stream(self):
        system = build_system(
            "proposed", paper_cluster(), Catalog(VitalCompiler())
        )
        result = _run(system, _tasks(["gru-h512-t1"] * 10))
        assert len(result.completed) == 10

    def test_deployments_reused(self):
        system = build_system(
            "proposed", paper_cluster(), Catalog(VitalCompiler())
        )
        _run(system, _tasks(["lstm-h256-t150"] * 8, gap=1.0))
        stats = system.controller.stats
        assert stats.reuse_hits >= 6  # after the first deployment

    def test_hot_model_replicates(self):
        system = build_system(
            "proposed", paper_cluster(), Catalog(VitalCompiler())
        )
        _run(system, _tasks(["lstm-h256-t150"] * 30))
        copies = sum(
            1
            for d in system.controller.deployments.values()
            if d.model_key == "lstm-h256-t150"
        )
        assert copies >= 2

    def test_large_model_spans_two_boards(self):
        system = build_system(
            "proposed", paper_cluster(), Catalog(VitalCompiler())
        )
        _run(system, _tasks(["gru-h2560-t375"] * 3))
        deployment = next(iter(system.controller.deployments.values()))
        assert len(deployment.placements) == 2


class TestBaselineSystem:
    def test_static_assignment_precomputed(self):
        system = BaselineSystem(paper_cluster())
        # Every pool model has a static home.
        from repro.workloads.deepbench import MODEL_POOL

        for specs in MODEL_POOL.values():
            for spec in specs:
                assert spec.key in system._assignment

    def test_large_model_assigned_pair(self):
        system = BaselineSystem(paper_cluster())
        boards = system._assignment["gru-h2304-t250"]
        assert len(boards) == 2

    def test_tasks_stick_to_assigned_board(self):
        system = BaselineSystem(paper_cluster())
        result = _run(system, _tasks(["gru-h512-t1"] * 6))
        assert len(result.completed) == 6
        board = system._assignment["gru-h512-t1"][0]
        assert board.resident_model == "gru-h512-t1"

    def test_switch_cost_charged_once_model_resident(self):
        system = BaselineSystem(paper_cluster())
        result = _run(system, _tasks(["lstm-h512-t25"] * 5, gap=1.0))
        services = sorted(t.service_s for t in result.completed)
        # First task pays the weight load; later ones do not.
        assert services[-1] > 2 * services[0]

    def test_whole_board_occupied(self):
        system = BaselineSystem(paper_cluster())
        # Two tasks of the same model serialise on their single board even
        # though the cluster has four boards.
        result = _run(system, _tasks(["gru-h512-t1"] * 2))
        first, second = sorted(result.completed, key=lambda t: t.start_s)
        assert second.start_s >= first.finish_s


class TestSystemComparison:
    @pytest.mark.parametrize("set_index", [0, 6])
    def test_proposed_beats_baseline(self, set_index):
        """The Fig. 12 headline on compositions with robust margins (the
        pure-L set's margin is within seed noise; the full averaged sweep
        lives in the benchmark harness)."""
        comp = TABLE1_COMPOSITIONS[set_index]
        tasks = generate_workload(comp, 80, arrival_rate_per_s=1e5, seed=42)
        throughput = {}
        for name in ("baseline", "proposed"):
            system = build_system(
                name, paper_cluster(), Catalog(VitalCompiler())
            )
            throughput[name] = _run(system, tasks).throughput
        assert throughput["proposed"] > throughput["baseline"]

    def test_heterogeneous_pairing_beats_restricted_on_pure_L(self):
        comp = TABLE1_COMPOSITIONS[2]  # 100% L
        tasks = generate_workload(comp, 60, arrival_rate_per_s=1e5, seed=7)
        throughput = {}
        for name in ("restricted", "proposed"):
            system = build_system(
                name, paper_cluster(), Catalog(VitalCompiler())
            )
            throughput[name] = _run(system, tasks).throughput
        assert throughput["proposed"] > 1.1 * throughput["restricted"]
