"""Edge-path coverage: non-convergence guards, scheduler deadlock
detection, reorder degenerate regions, and cache behaviours."""

import pytest

from repro.cluster.simulator import ClusterSimulator, Task
from repro.core.decompose import Decomposer
from repro.errors import DecomposeError, ISAError, SimulationError
from repro.isa.instructions import v_fill
from repro.isa.program import Program
from repro.isa.reorder import _schedule_region, reorder_for_overlap


class TestDecomposerGuards:
    def test_iteration_cap_raises(self, mini_design):
        tool = Decomposer(max_iterations=0)
        with pytest.raises(DecomposeError, match="converge"):
            tool.decompose(mini_design, control_modules={"decoder"})

    def test_enough_iterations_converge(self, mini_design):
        tool = Decomposer(max_iterations=8)
        result = tool.decompose(mini_design, control_modules={"decoder"})
        assert result.stats.iterations <= 8


class TestReorderDegenerate:
    def test_empty_region(self):
        assert _schedule_region([]) == []

    def test_single_instruction(self):
        inst = v_fill(0, 1.0, 4)
        assert _schedule_region([inst]) == [inst]

    def test_reorder_empty_program(self):
        out = reorder_for_overlap(Program(name="empty"))
        assert len(out) == 0

    def test_reorder_preserves_metadata(self):
        program = Program(name="meta")
        program.metadata["hidden"] = 64
        out = reorder_for_overlap(program)
        assert out.metadata["hidden"] == 64


class TestSimulatorDeadlockDetection:
    def test_idle_cluster_with_unplaceable_task(self):
        class NeverWithRetryBait:
            """Returns None forever; nothing ever runs."""

            def try_start(self, task, now):
                return None

            def on_finish(self, task, now):  # pragma: no cover
                pass

        tasks = [Task(task_id=0, model_key="m", arrival_s=0.0)]
        with pytest.raises(SimulationError):
            ClusterSimulator(NeverWithRetryBait(), "t").run(tasks)

    def test_retry_timer_eventually_places(self):
        class PlacesAfterTime:
            """Refuses until the clock passes 0.02 s (a staleness gate)."""

            def try_start(self, task, now):
                return 0.001 if now >= 0.02 else None

            def on_finish(self, task, now):
                pass

        tasks = [Task(task_id=0, model_key="m", arrival_s=0.0)]
        # Seed the queue with a second task that runs long enough for the
        # retry timer to carry the clock past the gate.
        inner = PlacesAfterTime()

        class Hybrid:
            def __init__(self):
                self.first_done = False

            def try_start(self, task, now):
                if task.task_id == 1:
                    return 0.05  # the long warmup task
                return inner.try_start(task, now)

            def on_finish(self, task, now):
                pass

        tasks.append(Task(task_id=1, model_key="w", arrival_s=0.0))
        result = ClusterSimulator(Hybrid(), "t").run(tasks)
        assert len(result.completed) == 2


class TestServiceEstimateCache:
    def test_cache_hit_across_deploys(self):
        from repro.cluster import paper_cluster
        from repro.runtime import Catalog, SystemController
        from repro.vital import LowLevelController, VitalCompiler

        catalog = Catalog(VitalCompiler())
        controller = SystemController(
            paper_cluster(), catalog, LowLevelController(catalog.compiler.store)
        )
        first, _ = controller.deploy("gru-h512-t1")
        cache_size = len(controller._service_cache)
        second, _ = controller.deploy("gru-h512-t1")
        assert len(controller._service_cache) == cache_size
        assert first.service_s == second.service_s


class TestCodegenScaleoutGuards:
    def test_three_replicas_with_indivisible_hidden(self):
        from repro.accel.codegen import RNNWeights, build_scaleout_programs

        weights = RNNWeights(
            kind="gru", hidden=64, input_dim=64,
            w=[None] * 3, u=[None] * 3, b=[None] * 3,
        )
        with pytest.raises(ISAError):
            build_scaleout_programs("gru", weights, 2, replicas=3)

    def test_four_replicas_divisible(self):
        from repro.accel.codegen import RNNWeights, build_scaleout_programs

        weights = RNNWeights(
            kind="gru", hidden=64, input_dim=64,
            w=[None] * 3, u=[None] * 3, b=[None] * 3,
        )
        programs = build_scaleout_programs("gru", weights, 2, replicas=4)
        assert len(programs) == 4
        for index, program in enumerate(programs):
            assert program.metadata["scaleout"]["replica_index"] == index
