"""Experiment-driver tests: every table/figure driver runs and reproduces
the paper's qualitative shape (fast, reduced-size variants where needed)."""

import pytest

from repro.experiments import (
    format_table,
    run_compile_overhead,
    run_fig11,
    run_fig12,
    run_table2,
    run_table3,
    run_table4,
)
from repro.experiments import fig11 as fig11_mod
from repro.experiments import fig12 as fig12_mod
from repro.experiments import table2 as table2_mod
from repro.experiments import table3 as table3_mod
from repro.experiments import table4 as table4_mod
from repro.experiments import compile_overhead as co_mod
from repro.units import us
from repro.workloads.synthetic import TABLE1_COMPOSITIONS


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len({line.index("2") for line in lines if "2" in line}) >= 1
        assert "---" in lines[1]


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table2()

    def test_two_instances(self, rows):
        assert [row.instance for row in rows] == ["BW-V37", "BW-K115"]

    def test_within_calibration_band(self, rows):
        for row in rows:
            for field in ("luts", "ffs", "dsps"):
                assert abs(row.rel_error(field)) < 0.20

    def test_utilisation_below_one(self, rows):
        for row in rows:
            for kind, value in row.utilisation.items():
                if value == value:  # skip NaN
                    assert value < 1.0

    def test_peak_tflops_close_to_paper(self, rows):
        for row in rows:
            assert abs(row.rel_error("tflops")) < 0.10

    def test_render(self, rows):
        text = table2_mod.render(rows)
        assert "BW-V37" in text and "paper" in text


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table3()

    def test_devices(self, rows):
        assert [row.device for row in rows] == ["XCVU37P", "XCKU115"]

    def test_block_counts_fit_devices(self, rows):
        assert rows[0].virtual_blocks <= 16
        assert rows[1].virtual_blocks <= 10

    def test_per_block_close_to_paper(self, rows):
        for row in rows:
            assert row.per_block.luts == pytest.approx(
                row.paper["luts"], rel=0.25
            )

    def test_binding_resource_highly_utilised(self, rows):
        """ViTAL blocks are sized so the binding resource is near full —
        Table 3 shows 87-100% on BRAM/DSP."""
        for row in rows:
            peak = max(
                value for value in row.utilisation.values() if value == value
            )
            assert peak > 0.80

    def test_render(self, rows):
        assert "virtual block" in table3_mod.render(rows)


class TestTable4:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table4()

    def test_fourteen_rows(self, rows):
        assert len(rows) == 14

    def test_overheads_in_band(self, rows):
        """The paper's 3.8-8.4% virtualization overhead."""
        for row in rows:
            if row.fits:
                assert 0.02 <= row.overhead <= 0.10

    def test_lstm1536_dash_on_k115(self, rows):
        dash = [
            row for row in rows
            if row.model.key == "lstm-h1536-t50" and row.device == "XCKU115"
        ]
        assert len(dash) == 1 and not dash[0].fits
        assert dash[0].paper is None  # paper also shows a dash

    def test_v37_faster_than_k115(self, rows):
        by_key = {}
        for row in rows:
            if row.fits:
                by_key.setdefault(row.model.key, {})[row.device] = row.baseline_s
        for key, devices in by_key.items():
            if len(devices) == 2:
                assert devices["XCVU37P"] < devices["XCKU115"]

    def test_latency_within_2x_of_paper(self, rows):
        for row in rows:
            if row.fits and row.paper:
                assert row.baseline_s / (row.paper[0] * 1e-3) < 2.1
                assert (row.paper[0] * 1e-3) / row.baseline_s < 2.1

    def test_render(self, rows):
        assert "Overhead" in table4_mod.render(rows)


class TestFig11:
    @pytest.fixture(scope="class")
    def curves(self):
        return run_fig11(sweep=tuple(us(x) for x in (0.0, 0.3, 0.6, 0.9, 1.2)))

    def test_three_curves(self, curves):
        assert [c.model.kind for c in curves] == ["lstm", "gru", "gru"]

    def test_paper_shape_lstm_hides_most(self, curves):
        lstm, gru_small, gru_large = curves
        assert lstm.hideable_added_latency_s > gru_small.hideable_added_latency_s
        assert (
            gru_small.hideable_added_latency_s
            > gru_large.hideable_added_latency_s
        )

    def test_small_gru_crossover_near_paper(self, curves):
        """The paper reports hiding up to ~0.6 us for GRU h=1024."""
        gru_small = curves[1]
        assert gru_small.hideable_added_latency_s == pytest.approx(
            us(0.6), abs=us(0.25)
        )

    def test_large_gru_barely_hides(self, curves):
        assert curves[2].hideable_added_latency_s < us(0.3)

    def test_latencies_monotone(self, curves):
        for curve in curves:
            assert curve.latency_s == sorted(curve.latency_s)

    def test_reorder_ablation_exposes_comm(self):
        sweep = (0.0, us(0.5))
        with_tool = run_fig11(sweep=sweep)
        without = run_fig11(sweep=sweep, reorder=False)
        for curve_with, curve_without in zip(with_tool, without):
            assert curve_without.latency_s[0] >= curve_with.latency_s[0]
            assert curve_without.overlap_window_s == 0.0

    def test_render(self, curves):
        assert "hides up to" in fig11_mod.render(curves)


class TestFig12:
    @pytest.fixture(scope="class")
    def rows(self):
        # Reduced size for test speed: 3 compositions, 1 seed.
        return run_fig12(
            compositions=TABLE1_COMPOSITIONS[:1] + TABLE1_COMPOSITIONS[6:7],
            task_count=80,
            seeds=(1,),
        )

    def test_throughputs_positive(self, rows):
        for row in rows:
            for value in row.throughput.values():
                assert value > 0

    def test_proposed_beats_baseline(self, rows):
        for row in rows:
            assert row.speedup_vs_baseline > 1.0

    def test_render(self, rows):
        text = fig12_mod.render(rows)
        assert "average speedup vs baseline" in text


class TestBenchDefrag:
    @pytest.fixture(scope="class")
    def bench(self, tmp_path_factory):
        from repro.experiments.bench_defrag import SMOKE_SMALL_TASKS, run_bench

        output = tmp_path_factory.mktemp("bench") / "BENCH_defrag.json"
        return run_bench(small_tasks=SMOKE_SMALL_TASKS, output=output), output

    @pytest.fixture(scope="class")
    def report(self, bench):
        return bench[0]

    def test_both_configs_complete_the_stream(self, report):
        total = report["workload"]["total_tasks"]
        assert report["defrag_off"]["completed"] == total
        assert report["defrag_on"]["completed"] == total

    def test_defrag_reduces_placement_failure_rate(self, report):
        """The subsystem's acceptance property on the fragmented workload."""
        off = report["defrag_off"]["placement_failure_rate"]
        on = report["defrag_on"]["placement_failure_rate"]
        assert on < off
        assert report["comparison"]["failure_rate_reduction"] > 0

    def test_migration_cost_visible_in_counters(self, report):
        on = report["defrag_on"]
        assert on["defrag_plans"] >= 1
        assert on["migrations_completed"] >= 1
        counters = on["migration_counters"]
        assert counters.get("migration.completed", 0) >= 1
        assert counters.get("migration.bytes", 0) > 0
        assert report["defrag_off"]["migrations_completed"] == 0

    def test_report_written_as_json(self, bench):
        import json

        report, path = bench
        assert json.loads(path.read_text()) == report


class TestCompileOverhead:
    @pytest.fixture(scope="class")
    def result(self):
        return run_compile_overhead()

    def test_ten_instances(self, result):
        assert result.instances == 10

    def test_tool_time_negligible(self, result):
        """Decompose+partition < 1% of HS-compile time (Section 4.3)."""
        assert result.tool_fraction < 0.01

    def test_total_overhead_near_paper(self, result):
        """The paper lands at 24.6% after amortisation."""
        assert 0.10 <= result.overhead_fraction <= 0.40

    def test_cache_hits_from_amortisation(self, result):
        assert result.variant_cache_hits > 0

    def test_render(self, result):
        assert "24.6%" in co_mod.render(result)
