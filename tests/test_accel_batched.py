"""Batched-simulator tests: the bit-identity contract against the scalar
simulator (model zoo configs and randomized property-style programs), the
paged copy-on-diverge :class:`BatchedDRAM`, the MV_MUL rounding-boundary
guard, fallback paths (batch=1, ``force_scalar``) and batched scale-out."""

import numpy as np
import pytest

from repro.accel.batched import (
    PAGE_WORDS,
    BatchedDRAM,
    BatchedFunctionalSimulator,
    _gamma,
    run_batched,
    run_scaleout_batched,
)
from repro.accel.codegen import (
    OUT_BASE,
    RNNWeights,
    build_scaleout_programs,
    make_codegen,
)
from repro.accel.functional import FunctionalSimulator, run_program, run_scaleout
from repro.errors import ExecutionError
from repro.isa.bfp import DEFAULT_FORMAT, bfp_matvec, bfp_quantize
from repro.isa.instructions import (
    Instruction,
    Op,
    endloop,
    halt,
    loop,
    mv_mul,
    v_concat,
    v_copy,
    v_fill,
    v_rd,
    v_relu,
    v_sigm,
    v_slice,
    v_tanh,
    v_wr,
    vv_add,
    vv_mul,
    vv_sub,
)
from repro.isa.program import Program
from repro.workloads.deepbench import model_by_key


class TestBatchedDRAM:
    def test_broadcast_write_stays_shared(self):
        dram = BatchedDRAM(4)
        dram.write(100, np.arange(8.0))
        # One shared page, no lane copies.
        assert dram.resident_bytes == PAGE_WORDS * 8
        assert np.array_equal(dram.read_shared(100, 8), np.arange(8.0))
        stacked = dram.read(100, 8)
        assert stacked.shape == (4, 8)
        assert np.array_equal(stacked, np.tile(np.arange(8.0), (4, 1)))

    def test_lane_write_promotes_page(self):
        dram = BatchedDRAM(3)
        dram.write(0, np.ones(4))
        dram.write(0, np.full(4, 9.0), lane=1)
        # The touched page diverged: read_shared degrades to the stack.
        assert dram.read_shared(0, 4).shape == (3, 4)
        assert np.array_equal(dram.lane_read(0, 0, 4), np.ones(4))
        assert np.array_equal(dram.lane_read(1, 0, 4), np.full(4, 9.0))
        assert np.array_equal(dram.lane_read(2, 0, 4), np.ones(4))
        assert dram.resident_bytes == PAGE_WORDS * 3 * 8

    def test_per_lane_stack_write(self):
        dram = BatchedDRAM(2)
        dram.write(10, np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert np.array_equal(dram.read(10, 2), [[1.0, 2.0], [3.0, 4.0]])

    def test_broadcast_after_divergence_hits_every_lane(self):
        dram = BatchedDRAM(2)
        dram.write(0, np.zeros(4), lane=0)  # diverge the page first
        dram.write(0, np.arange(4.0))  # broadcast
        assert np.array_equal(dram.lane_read(0, 0, 4), np.arange(4.0))
        assert np.array_equal(dram.lane_read(1, 0, 4), np.arange(4.0))

    def test_write_spanning_pages(self):
        dram = BatchedDRAM(2, page_words=8)
        values = np.arange(12.0)
        dram.write(4, values)  # spans pages 0 and 1
        assert np.array_equal(dram.read_shared(4, 12), values)
        dram.write(4, values * 2, lane=1)
        assert np.array_equal(dram.lane_read(1, 4, 12), values * 2)
        assert np.array_equal(dram.lane_read(0, 4, 12), values)

    def test_unwritten_reads_zero(self):
        assert BatchedDRAM(2).read(123, 5).sum() == 0.0

    def test_errors(self):
        with pytest.raises(ExecutionError, match="positive batch"):
            BatchedDRAM(0)
        dram = BatchedDRAM(2)
        with pytest.raises(ExecutionError, match="out of range"):
            dram.write(0, np.ones(2), lane=5)
        with pytest.raises(ExecutionError, match="out of range"):
            dram.lane_read(2, 0, 4)
        with pytest.raises(ExecutionError, match="negative"):
            dram.read(-4, 4)
        with pytest.raises(ExecutionError, match="lanes"):
            dram.write(0, np.ones((3, 4)))


def _scalar_lanes(program, shared_preload, lane_preloads):
    """The reference: one scalar simulator per lane."""
    sims = []
    for preload in lane_preloads:
        sim = FunctionalSimulator(program)
        if shared_preload is not None:
            shared_preload(sim)
        preload(sim)
        sim.run()
        sims.append(sim)
    return sims


def _rnn_case(kind, hidden, timesteps, batch, seed):
    weights = RNNWeights.random(kind, hidden, seed=seed)
    gen = make_codegen(kind, weights, timesteps)
    program = gen.build()
    rng = np.random.default_rng(seed + 1)
    payloads = [
        rng.normal(0.0, 0.5, (timesteps, hidden)) for _ in range(batch)
    ]
    return gen, program, payloads


class TestRNNEquivalence:
    """The headline contract: batched outputs are *bitwise* the scalar
    simulator's, across model-zoo-shaped configs."""

    @pytest.mark.parametrize(
        "kind,hidden,timesteps",
        [
            ("gru", 32, 4),
            ("lstm", 32, 4),
            ("gru", 48, 1),
            ("lstm", 48, 3),
            ("gru", 512, 1),  # a real zoo config (gru-h512-t1)
        ],
    )
    def test_batched_equals_scalar_bitwise(self, kind, hidden, timesteps):
        batch = 5
        gen, program, payloads = _rnn_case(kind, hidden, timesteps, batch, seed=7)
        lanes = run_batched(
            program,
            [(lambda xs: (lambda v: gen.preload_inputs(v, xs)))(xs) for xs in payloads],
            shared_preload=gen.preload_weights,
        )
        assert not lanes.fallback
        for index, xs in enumerate(payloads):
            expected = run_program(
                program, preload=lambda s, xs=xs: gen.preload(s, xs)
            ).dram.read(OUT_BASE, hidden)
            assert np.array_equal(
                lanes.lane_dram_read(index, OUT_BASE, hidden), expected
            )

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "model_key", ["lstm-h256-t150", "lstm-h512-t25"]
    )
    def test_zoo_models_bitwise(self, model_key):
        spec = model_by_key(model_key)
        weights = spec.real_weights(seed=0)
        gen = make_codegen(spec.kind, weights, spec.timesteps)
        program = gen.build()
        rng = np.random.default_rng(3)
        payloads = [
            rng.normal(0.0, 1.0, (spec.timesteps, spec.effective_input_dim))
            for _ in range(4)
        ]
        lanes = run_batched(
            program,
            [(lambda xs: (lambda v: gen.preload_inputs(v, xs)))(xs) for xs in payloads],
            shared_preload=gen.preload_weights,
        )
        for index, xs in enumerate(payloads):
            expected = run_program(
                program, preload=lambda s, xs=xs: gen.preload(s, xs)
            ).dram.read(OUT_BASE, spec.hidden)
            assert np.array_equal(
                lanes.lane_dram_read(index, OUT_BASE, spec.hidden), expected
            )

    def test_singleton_batch_falls_back(self):
        gen, program, payloads = _rnn_case("gru", 32, 2, 1, seed=5)
        lanes = run_batched(
            program,
            [lambda v: gen.preload_inputs(v, payloads[0])],
            shared_preload=gen.preload_weights,
        )
        assert lanes.fallback
        expected = run_program(
            program, preload=lambda s: gen.preload(s, payloads[0])
        ).dram.read(OUT_BASE, 32)
        assert np.array_equal(lanes.lane_dram_read(0, OUT_BASE, 32), expected)

    def test_force_scalar_falls_back_and_matches(self):
        gen, program, payloads = _rnn_case("lstm", 32, 3, 4, seed=9)
        preloads = [
            (lambda xs: (lambda v: gen.preload_inputs(v, xs)))(xs) for xs in payloads
        ]
        fast = run_batched(program, preloads, shared_preload=gen.preload_weights)
        slow = run_batched(
            program, preloads, shared_preload=gen.preload_weights, force_scalar=True
        )
        assert not fast.fallback and slow.fallback
        assert np.array_equal(
            fast.dram_read(OUT_BASE, 32), slow.dram_read(OUT_BASE, 32)
        )

    def test_empty_batch_rejected(self):
        _, program, _ = _rnn_case("gru", 32, 1, 2, seed=1)
        with pytest.raises(ExecutionError, match="at least one lane"):
            run_batched(program, [])

    def test_stats_aggregate_over_lanes(self):
        gen, program, payloads = _rnn_case("gru", 32, 2, 3, seed=2)
        lanes = run_batched(
            program,
            [(lambda xs: (lambda v: gen.preload_inputs(v, xs)))(xs) for xs in payloads],
            shared_preload=gen.preload_weights,
        )
        scalar = run_program(
            program, preload=lambda s: gen.preload(s, payloads[0])
        )
        # One batched instruction stream, not batch copies of it.
        assert lanes.stats.instructions == scalar.stats.instructions
        assert lanes.stats.mv_muls == scalar.stats.mv_muls


class TestRoundingBoundaryGuard:
    def test_gamma_positive_and_monotonic(self):
        assert 0.0 < _gamma(1) < _gamma(64) < _gamma(4096) < 1e-9

    def test_forced_guard_recomputes_exactly(self):
        """Inflating the error bound flags every element; the guard must
        then reproduce the exact per-lane dgemv verbatim."""
        rng = np.random.default_rng(0)
        matrix = bfp_quantize(rng.normal(0.0, 1.0, (6, 8)), DEFAULT_FORMAT)
        vecs = rng.normal(0.0, 1.0, (3, 8))
        sim = BatchedFunctionalSimulator(Program([halt()]), batch=3)
        inflated = np.abs(matrix).sum(axis=1) * 1e15
        out = sim._matvec_shared(matrix, inflated, vecs)
        assert sim.guard_recomputed == out.size
        quantised = bfp_quantize(vecs, DEFAULT_FORMAT)
        expected = np.stack([matrix @ quantised[lane] for lane in range(3)])
        assert np.array_equal(out, expected)

    def test_unflagged_dgemm_matches_scalar_after_fp16(self):
        rng = np.random.default_rng(1)
        matrix = bfp_quantize(rng.normal(0.0, 1.0, (16, 32)), DEFAULT_FORMAT)
        vecs = rng.normal(0.0, 1.0, (8, 32))
        sim = BatchedFunctionalSimulator(Program([halt()]), batch=8)
        out = sim._matvec_shared(matrix, np.abs(matrix).sum(axis=1), vecs)
        for lane in range(8):
            want = bfp_matvec(matrix, vecs[lane], DEFAULT_FORMAT)
            assert np.array_equal(
                out[lane].astype(np.float16), want.astype(np.float16)
            )


def _random_program(rng):
    """A type-correct random program plus its DRAM preload images.

    Exercises V_RD/V_WR (plain and loop-strided), M_RD + MV_MUL (shared
    and lane-divergent matrices), every MFU op, V_SLICE/V_CONCAT, and
    nested register reuse — the batched simulator must track the scalar
    one bitwise through all of it.
    """
    program = Program(name="prop")
    lengths = {}

    in_addr, mat_addr, stream_addr, out_addr = 0x100, 0x4000, 0x800, 0x6000
    n_inputs = int(rng.integers(2, 4))
    offset = 0
    for reg in range(n_inputs):
        length = int(rng.integers(4, 17))
        program.append(v_rd(reg, in_addr + offset, length))
        lengths[reg] = length
        offset += length
    total_in = offset
    next_reg = n_inputs

    # One matrix product: rows picked fresh, cols tied to an input register.
    src = int(rng.integers(0, n_inputs))
    rows, cols = int(rng.integers(3, 9)), lengths[src]
    shared_matrix = bool(rng.integers(0, 2))
    program.append(
        Instruction(Op.M_RD, dst=0, addr=mat_addr, length=rows, imm=float(cols))
    )
    program.append(mv_mul(next_reg, 0, src, rows))
    lengths[next_reg] = rows
    next_reg += 1

    # A loop with strided stream reads and writes.
    iters, chunk = int(rng.integers(2, 5)), int(rng.integers(2, 6))
    program.append(loop(iters))
    program.append(
        Instruction(Op.V_RD, dst=next_reg, addr=stream_addr, length=chunk,
                    imm=float(chunk))
    )
    program.append(
        Instruction(Op.V_WR, a=next_reg, addr=stream_addr + iters * chunk,
                    length=chunk, imm=float(chunk))
    )
    program.append(endloop())
    lengths[next_reg] = chunk
    next_reg += 1

    # Random MFU traffic over whatever is live.
    for _ in range(int(rng.integers(6, 16))):
        regs = list(lengths)
        a = int(rng.choice(regs))
        kind = int(rng.integers(0, 9))
        if kind < 3:  # binary op needs two same-length operands
            peers = [r for r in regs if lengths[r] == lengths[a]]
            b = int(rng.choice(peers))
            ctor = (vv_add, vv_sub, vv_mul)[kind]
            program.append(ctor(next_reg, a, b, lengths[a]))
            lengths[next_reg] = lengths[a]
        elif kind < 6:
            ctor = (v_sigm, v_tanh, v_relu)[kind - 3]
            program.append(ctor(next_reg, a, lengths[a]))
            lengths[next_reg] = lengths[a]
        elif kind == 6:
            program.append(v_copy(next_reg, a, lengths[a]))
            lengths[next_reg] = lengths[a]
        elif kind == 7 and lengths[a] >= 2:
            width = int(rng.integers(1, lengths[a]))
            start = int(rng.integers(0, lengths[a] - width + 1))
            program.append(v_slice(next_reg, a, start, width))
            lengths[next_reg] = width
        else:
            b = int(rng.choice(regs))
            program.append(v_concat(next_reg, a, b, lengths[a] + lengths[b]))
            lengths[next_reg] = lengths[a] + lengths[b]
        next_reg += 1
    fill = int(rng.integers(2, 9))
    program.append(v_fill(next_reg, float(rng.normal()), fill))
    lengths[next_reg] = fill

    # Spill every live register to a distinct DRAM window.
    spill = {}
    cursor = out_addr
    for reg, length in sorted(lengths.items()):
        program.append(v_wr(reg, cursor, length))
        spill[reg] = (cursor, length)
        cursor += length
    program.append(halt())

    matrix = rng.normal(0.0, 1.0, (rows, cols))
    return {
        "program": program,
        "lengths": lengths,
        "spill": spill,
        "in_addr": in_addr,
        "total_in": total_in,
        "mat_addr": mat_addr,
        "matrix": matrix,
        "shared_matrix": shared_matrix,
        "stream_addr": stream_addr,
        "stream_words": iters * chunk,
    }


class TestRandomProgramEquivalence:
    """Property-style: seeded random programs, random batch sizes, every
    architectural register and DRAM window compared bitwise."""

    @pytest.mark.parametrize("seed", range(6))
    def test_batched_tracks_scalar(self, seed):
        rng = np.random.default_rng(1000 + seed)
        case = _random_program(rng)
        batch = int(rng.integers(2, 9))

        lane_images = [
            {
                "inputs": rng.normal(0.0, 1.0, case["total_in"]),
                "stream": rng.normal(0.0, 1.0, case["stream_words"]),
                "matrix": case["matrix"]
                if case["shared_matrix"]
                else rng.normal(0.0, 1.0, case["matrix"].shape),
            }
            for _ in range(batch)
        ]

        def lane_preload(image):
            def preload(view):
                view.dram.write(case["in_addr"], image["inputs"])
                view.dram.write(case["stream_addr"], image["stream"])
                if not case["shared_matrix"]:
                    view.dram.write(case["mat_addr"], image["matrix"].ravel())
            return preload

        def shared_preload(view):
            if case["shared_matrix"]:
                view.dram.write(case["mat_addr"], case["matrix"].ravel())

        lanes = run_batched(
            case["program"],
            [lane_preload(image) for image in lane_images],
            shared_preload=shared_preload,
        )
        assert not lanes.fallback

        for index, image in enumerate(lane_images):
            ref = FunctionalSimulator(case["program"])
            shared_preload(ref)
            lane_preload(image)(ref)
            ref.run()
            for reg in case["lengths"]:
                assert np.array_equal(
                    lanes.lane_vector(index, reg), ref.vector(reg)
                ), f"seed {seed}: v{reg} diverged on lane {index}"
            for reg, (addr, length) in case["spill"].items():
                assert np.array_equal(
                    lanes.lane_dram_read(index, addr, length),
                    ref.dram.read(addr, length),
                ), f"seed {seed}: DRAM spill of v{reg} diverged on lane {index}"


class TestScaleOutBatched:
    @pytest.mark.parametrize("replicas", [2, 4])
    def test_matches_per_lane_scaleout_bitwise(self, replicas, gru_small):
        weights, xs0 = gru_small
        h, t = weights.hidden, xs0.shape[0]
        rng = np.random.default_rng(17)
        payloads = [rng.normal(0.0, 0.5, (t, h)) for _ in range(3)]
        programs = build_scaleout_programs("gru", weights, t, replicas)
        gens = [
            make_codegen("gru", weights, t, replicas=replicas, replica_index=i)
            for i in range(replicas)
        ]

        lanes, fabric = run_scaleout_batched(
            programs,
            [
                (lambda xs: (lambda view, i: gens[i].preload_inputs(view, xs)))(xs)
                for xs in payloads
            ],
            shared_preload=lambda view, i: gens[i].preload_weights(view),
        )
        assert fabric.bytes_transferred > 0
        slice_rows = h // replicas

        for index, xs in enumerate(payloads):
            sims, _ = run_scaleout(
                programs, preload=lambda sim, i, xs=xs: gens[i].preload(sim, xs)
            )
            for rep in range(replicas):
                expected = sims[rep].dram.read(
                    OUT_BASE + rep * slice_rows, slice_rows
                )
                got = lanes[rep].lane_dram_read(
                    index, OUT_BASE + rep * slice_rows, slice_rows
                )
                assert np.array_equal(got, expected)

    def test_sync_without_fabric_rejected_at_validation(self, gru_small):
        from repro.errors import ProgramValidationError

        weights, xs = gru_small
        programs = build_scaleout_programs("gru", weights, xs.shape[0], 2)
        with pytest.raises(ProgramValidationError, match="sync"):
            BatchedFunctionalSimulator(programs[0], batch=2)
