"""Block-floating-point tests: exactness, error bounds, and the matvec
behaviour the functional simulator builds on."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ISAError
from repro.isa.bfp import (
    BFPFormat,
    bfp_matvec,
    bfp_quantize,
    quantisation_error_bound,
    to_float16,
)


class TestFormat:
    def test_default_sane(self):
        fmt = BFPFormat()
        assert fmt.max_mantissa == 31
        assert fmt.block_size == 16

    def test_rejects_tiny_mantissa(self):
        with pytest.raises(ISAError):
            BFPFormat(mantissa_bits=1)

    def test_rejects_bad_block(self):
        with pytest.raises(ISAError):
            BFPFormat(block_size=0)

    def test_quantisation_step(self):
        assert BFPFormat(mantissa_bits=6).quantisation_step == pytest.approx(1 / 31)


class TestQuantize:
    def test_zero_preserved(self):
        assert np.all(bfp_quantize(np.zeros(16)) == 0.0)

    def test_empty_array(self):
        assert bfp_quantize(np.array([])).size == 0

    def test_block_max_exactly_representable(self):
        values = np.zeros(16)
        values[3] = 5.0
        quantised = bfp_quantize(values)
        assert quantised[3] == pytest.approx(5.0)

    def test_idempotent(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=64)
        once = bfp_quantize(values)
        assert np.array_equal(bfp_quantize(once), once)

    def test_unaligned_length_padded_transparently(self):
        values = np.arange(1.0, 20.0)  # 19 values, not a block multiple
        quantised = bfp_quantize(values)
        assert quantised.shape == values.shape

    def test_aligned_fast_path_matches_padded_path(self):
        """Tile-aligned inputs skip the pad round-trip; values must match
        the general path exactly (append a padding-forcing element)."""
        rng = np.random.default_rng(3)
        values = rng.normal(size=32)  # two whole blocks
        aligned = bfp_quantize(values)
        unaligned = bfp_quantize(np.append(values, 1.0))[:-1]
        assert np.array_equal(aligned, unaligned)
        assert aligned.shape == values.shape

    def test_subnormal_block_max_does_not_nan(self):
        """Regression: a block max so small the shared-exponent scale
        underflows to zero used to produce NaNs (found by hypothesis)."""
        values = np.array([5e-324, 0.0])
        quantised = bfp_quantize(values)
        assert np.all(np.isfinite(quantised))
        assert np.all(np.abs(quantised - values) <= 5e-324)

    def test_matrix_blocks_along_rows(self):
        matrix = np.zeros((2, 16))
        matrix[0, :] = 100.0
        matrix[1, :] = 0.001
        quantised = bfp_quantize(matrix)
        # Each row has its own exponent, so the small row is not crushed.
        assert np.all(quantised[1, :] > 0)

    def test_shared_exponent_crushes_small_values_in_block(self):
        values = np.zeros(16)
        values[0] = 1000.0
        values[1] = 0.01  # far below one mantissa step of the block max
        quantised = bfp_quantize(values)
        assert quantised[1] == 0.0


class TestMatvec:
    def test_identity_matvec_returns_quantised_vector(self):
        matrix = bfp_quantize(np.eye(16))
        vector = bfp_quantize(np.arange(16.0))
        result = bfp_matvec(matrix, vector, quantize_vector=False)
        assert np.allclose(result, vector)

    def test_dimension_mismatch(self):
        with pytest.raises(ISAError):
            bfp_matvec(np.zeros((4, 8)), np.zeros(4))

    def test_non_matrix_rejected(self):
        with pytest.raises(ISAError):
            bfp_matvec(np.zeros(8), np.zeros(8))

    def test_error_small_relative(self):
        rng = np.random.default_rng(1)
        matrix = rng.normal(size=(64, 64)) / 8.0
        vector = rng.normal(size=64)
        exact = matrix @ vector
        approx = bfp_matvec(bfp_quantize(matrix), vector)
        scale = np.max(np.abs(exact)) + 1e-9
        assert np.max(np.abs(approx - exact)) / scale < 0.15


class TestHelpers:
    def test_error_bound_formula(self):
        fmt = BFPFormat(mantissa_bits=6)
        assert quantisation_error_bound(fmt, 31.0) == pytest.approx(0.5)

    def test_to_float16_rounds(self):
        value = np.array([1.0 + 2**-13])
        assert to_float16(value)[0] == 1.0


@settings(max_examples=50, deadline=None)
@given(
    hnp.arrays(
        np.float64,
        st.integers(min_value=1, max_value=80),
        elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    )
)
def test_quantisation_error_within_bound(values):
    """Every quantised value is within half a step of its block maximum."""
    fmt = BFPFormat()
    quantised = bfp_quantize(values, fmt)
    padded = np.pad(values, (0, (-len(values)) % fmt.block_size))
    blocks = padded.reshape(-1, fmt.block_size)
    quant_padded = np.pad(quantised, (0, (-len(values)) % fmt.block_size))
    quant_blocks = quant_padded.reshape(-1, fmt.block_size)
    for block, quant in zip(blocks, quant_blocks):
        bound = quantisation_error_bound(fmt, np.max(np.abs(block))) + 1e-12
        assert np.max(np.abs(block - quant)) <= bound


@settings(max_examples=50, deadline=None)
@given(
    hnp.arrays(
        np.float64,
        st.integers(min_value=1, max_value=64),
        elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    )
)
def test_quantisation_idempotent_property(values):
    fmt = BFPFormat()
    once = bfp_quantize(values, fmt)
    assert np.array_equal(bfp_quantize(once, fmt), once)
