"""Tests for the ASCII chart helpers the figure drivers use."""

import pytest

from repro.errors import ReproError
from repro.experiments.charts import grouped_bar_chart, line_chart


class TestLineChart:
    def test_axes_and_legend(self):
        text = line_chart(
            [0.0, 1.0, 2.0],
            {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]},
            x_label="time",
            y_label="value",
        )
        assert "value" in text
        assert "time" in text
        assert "o = a" in text and "x = b" in text

    def test_peak_labelled(self):
        text = line_chart([0, 1], {"s": [1.0, 5.0]})
        assert "5" in text.splitlines()[0]

    def test_monotone_series_slopes_down_the_grid(self):
        text = line_chart([0, 1, 2, 3], {"s": [1.0, 2.0, 3.0, 4.0]}, height=8)
        rows_with_points = [
            i for i, line in enumerate(text.splitlines()) if "o" in line
        ]
        # Larger values render on earlier (higher) rows.
        assert rows_with_points == sorted(rows_with_points)

    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            line_chart([], {})

    def test_rejects_length_mismatch(self):
        with pytest.raises(ReproError):
            line_chart([0, 1], {"s": [1.0]})

    def test_rejects_nonpositive_peak(self):
        with pytest.raises(ReproError):
            line_chart([0, 1], {"s": [0.0, 0.0]})

    def test_constant_x_span_handled(self):
        text = line_chart([1.0, 1.0], {"s": [1.0, 2.0]})
        assert "|" in text


class TestGroupedBarChart:
    def test_bars_scale(self):
        text = grouped_bar_chart(
            ["one", "two"],
            {"sys": [10.0, 20.0]},
            width=20,
        )
        lines = [line for line in text.splitlines() if "#" in line]
        assert lines[1].count("#") == 2 * lines[0].count("#")

    def test_all_groups_rendered(self):
        text = grouped_bar_chart(
            ["w"], {"base": [1.0], "prop": [2.0]}
        )
        assert "base" in text and "prop" in text

    def test_values_printed(self):
        text = grouped_bar_chart(["w"], {"s": [123.0]})
        assert "123" in text

    def test_rejects_mismatch(self):
        with pytest.raises(ReproError):
            grouped_bar_chart(["a", "b"], {"s": [1.0]})

    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            grouped_bar_chart([], {})


class TestIntegration:
    def test_fig11_render_contains_chart(self):
        from repro.experiments.fig11 import render, run_fig11
        from repro.units import us

        text = render(run_fig11(sweep=(0.0, us(0.6), us(1.2))))
        assert "latency increase over +0 us" in text
        assert "added inter-FPGA latency" in text
