"""Checkpoint/restore + live-migration subsystem tests.

Covers the three layers separately and together:

* ISA-level checkpoints: capture/serialise/restore identity, including
  mid-loop snapshots and scale-out fabrics with in-flight slices.
* The migration engine: same-type and cross-type moves at runtime level,
  validation errors, and the begin/finish dual-occupancy window.
* Defragmentation: the fragmentation metric, compaction planning, and the
  end-to-end DES run where a placement failure triggers defrag.

The subsystem is off by default; the last test class pins that.
"""

import numpy as np
import pytest

from repro.accel.codegen import OUT_BASE, GRUCodegen, build_scaleout_programs
from repro.accel.functional import FunctionalSimulator, run_program
from repro.cluster import ClusterSimulator, Task, paper_cluster
from repro.errors import AllocationError, DeploymentError, ReproError
from repro.isa.assembler import assemble
from repro.migration import (
    AcceleratorCheckpoint,
    FabricCheckpoint,
    MigrationEngine,
    architectural_state_bytes,
    checkpoint_scaleout,
    cluster_fragmentation,
    fragmentation,
    plan_defrag,
    restore_scaleout,
)
from repro.perf.profiling import PROFILER
from repro.runtime import Catalog, build_system
from repro.runtime.controller import SystemController
from repro.runtime.deployment import DeploymentState
from repro.vital import LowLevelController, VitalCompiler


@pytest.fixture(scope="module")
def shared_catalog():
    return Catalog(VitalCompiler())


def _controller(catalog, **kwargs):
    cluster = paper_cluster()
    controller = SystemController(
        cluster,
        catalog,
        LowLevelController(catalog.compiler.store),
        migration_enabled=True,
        **kwargs,
    )
    return controller, cluster


LOOP_SOURCE = (
    "v_fill v0, 0.0, 4\n"
    "v_fill v1, 1.0, 4\n"
    "loop 6\n"
    "vv_add v0, v0, v1, 4\n"
    "v_wr v0, 0x80, 4\n"
    "endloop\n"
    "halt\n"
)


class TestStateSizeModel:
    def test_program_footprint_never_exceeds_config_maximum(self, shared_catalog):
        entry = shared_catalog.entry_by_key("gru-h512-t1")
        plan = entry.sorted_plans()[0]
        for device_type in plan.feasible_types:
            config = plan.images[device_type].instance
            for program in plan.programs:
                sized = architectural_state_bytes(config, program)
                ceiling = architectural_state_bytes(config)
                assert 0 < sized <= ceiling

    def test_scales_with_model_size(self, shared_catalog):
        small = shared_catalog.entry_by_key("gru-h512-t1").sorted_plans()[0]
        large = shared_catalog.entry_by_key("gru-h1536-t375").sorted_plans()[0]
        device = small.feasible_types[0]
        assert architectural_state_bytes(
            large.images[device].instance, large.programs[0]
        ) > architectural_state_bytes(
            small.images[device].instance, small.programs[0]
        )


class TestAcceleratorCheckpoint:
    def _mid_loop_sim(self):
        sim = FunctionalSimulator(assemble(LOOP_SOURCE, name="loopy"))
        # Step into the middle of the third loop iteration.
        for _ in range(12):
            sim.step()
        assert sim.loop_stack, "snapshot point must be mid-loop"
        return sim

    def test_mid_loop_capture_restore_identity(self):
        original = self._mid_loop_sim()
        checkpoint = AcceleratorCheckpoint.capture(original)
        restored = checkpoint.restore(assemble(LOOP_SOURCE, name="loopy"))
        original.run()
        restored.run()
        assert np.array_equal(restored.vector(0), original.vector(0))
        assert np.array_equal(
            restored.dram.read(0x80, 4), original.dram.read(0x80, 4)
        )
        assert restored.stats.instructions == original.stats.instructions

    def test_capture_does_not_alias_live_state(self):
        sim = self._mid_loop_sim()
        checkpoint = AcceleratorCheckpoint.capture(sim)
        before = checkpoint.vrf[0].copy()
        sim.run()  # keeps mutating v0 after the snapshot
        assert np.array_equal(checkpoint.vrf[0], before)

    def test_serialise_roundtrip(self):
        checkpoint = AcceleratorCheckpoint.capture(self._mid_loop_sim())
        clone = AcceleratorCheckpoint.from_bytes(checkpoint.to_bytes())
        assert clone.pc == checkpoint.pc
        assert clone.loop_stack == checkpoint.loop_stack
        for register, values in checkpoint.vrf.items():
            assert np.array_equal(clone.vrf[register], values)
        assert np.array_equal(clone.dram, checkpoint.dram)
        assert vars(clone.stats) == vars(checkpoint.stats)
        assert checkpoint.payload_bytes() == len(checkpoint.to_bytes())

    def test_serialise_preserves_matrix_shapes(self, gru_small):
        weights, xs = gru_small
        gen = GRUCodegen(weights, xs.shape[0])
        sim = FunctionalSimulator(gen.build())
        gen.preload(sim, xs)
        for _ in range(40):
            sim.step()
        checkpoint = AcceleratorCheckpoint.capture(sim)
        clone = AcceleratorCheckpoint.from_bytes(checkpoint.to_bytes())
        for register, matrix in checkpoint.mrf.items():
            assert clone.mrf[register].shape == matrix.shape
            assert np.array_equal(clone.mrf[register], matrix)

    def test_restore_rejects_wrong_program(self):
        checkpoint = AcceleratorCheckpoint.capture(self._mid_loop_sim())
        with pytest.raises(ReproError, match="cannot resume"):
            checkpoint.restore(assemble("halt\n", name="other"))

    def test_unknown_version_rejected(self):
        blob = AcceleratorCheckpoint.capture(self._mid_loop_sim()).to_bytes()
        tampered = blob.replace(b'"version": 1', b'"version": 99')
        with pytest.raises(ReproError, match="version"):
            AcceleratorCheckpoint.from_bytes(tampered)


class TestScaleOutCheckpoint:
    def _partial_scaleout(self, gru_small, replicas=2):
        weights, xs = gru_small
        t = xs.shape[0]
        programs = build_scaleout_programs("gru", weights, t, replicas)
        gens = [
            GRUCodegen(weights, t, replicas=replicas, replica_index=i)
            for i in range(replicas)
        ]
        from repro.accel.functional import ScaleOutFabric

        fabric = ScaleOutFabric(replicas)
        sims = [
            FunctionalSimulator(program, fabric=fabric, replica_index=i)
            for i, program in enumerate(programs)
        ]
        for i, sim in enumerate(sims):
            gens[i].preload(sim, xs)
        # Run replica 0 until it blocks on the exchange: its slice is now
        # in flight in the fabric while replica 1 has not sent yet.
        status = sims[0].run_until_blocked()
        assert status == "blocked"
        return sims, fabric, weights, xs

    def _drain(self, sims):
        while not all(sim.finished for sim in sims):
            progressed = False
            for sim in sims:
                if sim.finished:
                    continue
                before = sim.stats.instructions
                status = sim.run_until_blocked()
                if sim.stats.instructions > before or status == "halted":
                    progressed = True
            assert progressed, "scale-out deadlock after restore"

    def test_in_flight_slices_survive_migration(self, gru_small):
        sims, fabric, weights, xs = self._partial_scaleout(gru_small)
        replicas = len(sims)
        checkpoints, fabric_checkpoint = checkpoint_scaleout(sims, fabric)

        # Ship the snapshot over the wire (what the migration transfers).
        blobs = [c.to_bytes() for c in checkpoints]
        fabric_blob = fabric_checkpoint.to_bytes()
        restored_sims, restored_fabric = restore_scaleout(
            [AcceleratorCheckpoint.from_bytes(b) for b in blobs],
            FabricCheckpoint.from_bytes(fabric_blob),
            [sim.program for sim in sims],
        )

        self._drain(sims)
        self._drain(restored_sims)
        h = weights.hidden
        slice_rows = h // replicas
        for i in range(replicas):
            assert np.array_equal(
                restored_sims[i].dram.read(OUT_BASE + i * slice_rows, slice_rows),
                sims[i].dram.read(OUT_BASE + i * slice_rows, slice_rows),
            )
        assert restored_fabric.bytes_transferred == fabric.bytes_transferred

    def test_restore_count_mismatch(self, gru_small):
        sims, fabric, _, _ = self._partial_scaleout(gru_small)
        checkpoints, fabric_checkpoint = checkpoint_scaleout(sims, fabric)
        with pytest.raises(ReproError, match="checkpoints"):
            restore_scaleout(checkpoints, fabric_checkpoint, [sims[0].program])


class TestMigrationEngine:
    def test_same_type_move(self, shared_catalog):
        controller, cluster = _controller(shared_catalog)
        deployment, _ = controller.deploy("gru-h512-t1")
        src = deployment.placements[0].fpga_id
        src_type = deployment.placements[0].device_type
        service_before = deployment.service_s
        destinations = [
            board
            for board in cluster.boards.values()
            if board.model.name == src_type and board.fpga_id != src
        ]
        engine = controller.migration
        plan = engine.migrate(deployment, {0: destinations[0]}, now=1.0)
        placement = deployment.placements[0]
        assert placement.fpga_id == destinations[0].fpga_id
        assert cluster.board(src).free_blocks == len(cluster.board(src).blocks)
        assert destinations[0].owned_indices(deployment.deployment_id) == (
            placement.block_indices
        )
        assert deployment.state is DeploymentState.IDLE
        assert deployment.migrations == 1
        assert deployment.service_s == pytest.approx(service_before)
        assert plan.total_cost_s > 0
        assert controller.index.check_consistent()

    def test_cross_type_move_and_functional_identity(self, shared_catalog):
        """The acceptance property: checkpoint on one device type, restore
        on another board of another type, identical functional output."""
        controller, cluster = _controller(shared_catalog)
        deployment, _ = controller.deploy("lstm-h256-t150")
        src_placement = deployment.placements[0]
        other_type = next(
            t
            for t in deployment.plan.feasible_types
            if t != src_placement.device_type
        )
        destination = next(
            board
            for board in cluster.boards.values()
            if board.model.name == other_type
        )

        # Run the deployment's program halfway on the source, checkpoint.
        program = deployment.plan.programs[0]
        straight = run_program(program)
        partial = FunctionalSimulator(program)
        for _ in range(len(program.instructions) // 2):
            partial.step()
        checkpoint = AcceleratorCheckpoint.capture(partial)

        engine = controller.migration
        plan = engine.migrate(deployment, {0: destination}, now=2.0)
        move = plan.moves[0]
        assert move.cross_type
        assert move.dst_blocks == deployment.plan.images[other_type].virtual_blocks
        new_placement = deployment.placements[0]
        assert new_placement.device_type == other_type
        assert new_placement.fpga_id == destination.fpga_id
        # Service time was re-estimated for the new device-type mix.
        assert deployment.service_s > 0
        assert controller.index.check_consistent()

        # Resume the shipped snapshot on the destination: same program (the
        # checkpoint is ISA-level), new board and type, identical output.
        resumed = AcceleratorCheckpoint.from_bytes(checkpoint.to_bytes()).restore(
            program
        )
        resumed.run()
        for register in straight.vrf:
            assert np.array_equal(resumed.vector(register), straight.vector(register))

    def test_move_costs_follow_the_model(self, shared_catalog):
        controller, cluster = _controller(shared_catalog)
        deployment, _ = controller.deploy("gru-h512-t1")
        placement = deployment.placements[0]
        destination = next(
            board
            for board in cluster.boards.values()
            if board.model.name == placement.device_type
            and board.fpga_id != placement.fpga_id
        )
        engine = controller.migration
        plan = engine.plan_move(deployment, {0: destination})
        move = plan.moves[0]
        assert move.drain_s == engine.params.drain_s
        assert move.transfer_s == cluster.network.transfer_time(
            move.src_fpga, move.dst_fpga, move.state_bytes
        )
        assert move.reconfig_s == pytest.approx(
            move.dst_blocks * controller.reconfig_s_per_block
        )
        assert move.cost_s == pytest.approx(
            move.drain_s + move.transfer_s + move.reconfig_s
        )

    def test_plan_rejects_busy_and_bad_targets(self, shared_catalog):
        controller, cluster = _controller(shared_catalog)
        deployment, _ = controller.deploy("gru-h512-t1")
        engine = controller.migration
        src = cluster.board(deployment.placements[0].fpga_id)
        other = next(
            board
            for board in cluster.boards.values()
            if board.fpga_id != src.fpga_id
            and board.model.name in deployment.plan.images
        )
        with pytest.raises(DeploymentError, match="already resides"):
            engine.plan_move(deployment, {0: src})
        deployment.acquire()
        with pytest.raises(DeploymentError, match="state is busy"):
            engine.plan_move(deployment, {0: other})
        deployment.release(0.0)
        with pytest.raises(ReproError, match="no replica"):
            engine.plan_move(deployment, {7: other})

    def test_plan_rejects_type_without_image(self, shared_catalog):
        """lstm-h1536-t50 maps onto the VU37P only — a KU115 target has no
        image in the mapping database and must be refused."""
        controller, cluster = _controller(shared_catalog)
        deployment, _ = controller.deploy("lstm-h1536-t50")
        assert list(deployment.plan.images) == ["XCVU37P"]
        ku115 = next(
            board
            for board in cluster.boards.values()
            if board.model.name == "XCKU115"
        )
        with pytest.raises(DeploymentError, match="no image"):
            controller.migration.plan_move(deployment, {0: ku115})

    def test_plan_rejects_full_destination(self, shared_catalog):
        controller, cluster = _controller(shared_catalog)
        deployment, _ = controller.deploy("gru-h512-t1")
        placement = deployment.placements[0]
        destination = next(
            board
            for board in cluster.boards.values()
            if board.model.name == placement.device_type
            and board.fpga_id != placement.fpga_id
        )
        destination.allocate("squatter", destination.free_blocks)
        with pytest.raises(DeploymentError, match="cannot host"):
            controller.migration.plan_move(deployment, {0: destination})

    def test_begin_finish_dual_occupancy(self, shared_catalog):
        controller, cluster = _controller(shared_catalog)
        deployment, _ = controller.deploy("gru-h512-t1")
        src = cluster.board(deployment.placements[0].fpga_id)
        src_used = src.used_blocks
        destination = next(
            board
            for board in cluster.boards.values()
            if board.model.name == src.model.name
            and board.fpga_id != src.fpga_id
        )
        engine = controller.migration
        plan = engine.plan_move(deployment, {0: destination})
        cost = engine.begin(plan, now=0.0)
        assert cost == pytest.approx(plan.total_cost_s)
        # Mid-move: the deployment holds blocks on BOTH boards and is
        # neither servable nor evictable.
        assert deployment.state is DeploymentState.MIGRATING
        assert src.used_blocks == src_used
        assert destination.used_blocks == plan.moves[0].dst_blocks
        with pytest.raises(AllocationError, match="cannot evict"):
            controller.evict(deployment)
        engine.finish(plan, now=cost)
        assert src.used_blocks == 0
        assert deployment.state is DeploymentState.IDLE
        assert controller.index.check_consistent()


def _shatter_vu37p(controller, cluster):
    """Block the KU115 and leave every VU37P board with an 8-block hole.

    12 four-block deployments fill the three VU37P boards; evicting one
    resident in every half-board leaves 8 free blocks per board — plenty
    of aggregate space, but no 14-block hole for gru-h1536-t375.
    """
    ku115 = cluster.board("ku115-0")
    ku115.allocate("pinned", ku115.free_blocks)
    deployments = [controller.deploy("gru-h512-t1")[0] for _ in range(12)]
    by_board: dict[str, list] = {}
    for deployment in deployments:
        by_board.setdefault(deployment.placements[0].fpga_id, []).append(
            deployment
        )
    assert sorted(by_board) == ["vu37p-0", "vu37p-1", "vu37p-2"]
    for residents in by_board.values():
        controller.evict(residents[0])
        controller.evict(residents[2])
    return by_board


class TestDefrag:
    def test_fragmentation_metric(self, shared_catalog):
        controller, cluster = _controller(shared_catalog)
        index = controller.index
        # Classic external-fragmentation form: even an empty three-board
        # type reads 1 - 16/48 because the free space spans three holes.
        assert fragmentation(index, "XCVU37P") == pytest.approx(1 - 16 / 48)
        # All free space concentrated on one board: not fragmented.
        cluster.board("vu37p-1").allocate("a", 16)
        cluster.board("vu37p-2").allocate("b", 16)
        assert fragmentation(index, "XCVU37P") == 0.0
        # Shatter it: 6+2 free in two holes, largest covers three quarters.
        cluster.board("vu37p-0").allocate("c", 10)
        cluster.board("vu37p-1").release("a")
        cluster.board("vu37p-1").allocate("d", 14)
        assert fragmentation(index, "XCVU37P") == pytest.approx(1 - 6 / 8)
        report = cluster_fragmentation(index)
        assert report["XCKU115"] == 0.0  # one untouched 10-block hole
        assert 0 < report["overall"] < report["XCVU37P"]

    def test_full_type_is_not_fragmented(self, shared_catalog):
        controller, cluster = _controller(shared_catalog)
        board = cluster.board("ku115-0")
        board.allocate("all", board.free_blocks)
        assert fragmentation(controller.index, "XCKU115") == 0.0

    def test_capacity_shortfall_yields_no_plan(self, shared_catalog):
        controller, cluster = _controller(shared_catalog)
        for board in cluster.boards.values():
            keep = 2 if board.model.name == "XCVU37P" else 0
            board.allocate("wall", board.free_blocks - keep)
        # 6 free VU37P blocks < the 14 gru-h1536-t375 needs: capacity, not
        # fragmentation — no migration set can help.
        engine = MigrationEngine(controller)
        assert plan_defrag(controller, "gru-h1536-t375", engine) is None

    def test_plan_opens_a_hole_and_executes(self, shared_catalog):
        controller, cluster = _controller(shared_catalog)
        _shatter_vu37p(controller, cluster)
        with pytest.raises(AllocationError):
            controller.deploy("gru-h1536-t375")
        frag_before = fragmentation(controller.index, "XCVU37P")
        plan = controller.plan_defrag("gru-h1536-t375")
        assert plan is not None
        assert plan.device_type == "XCVU37P"
        assert plan.needed_blocks == 14
        assert len(plan.target_fpgas) == 1
        assert plan.move_count == 2  # two 4-block victims open a 16-hole
        cost = controller.begin_defrag(plan, now=0.0)
        assert cost == pytest.approx(plan.total_cost_s) and cost > 0
        controller.finish_defrag(plan, now=cost)
        assert fragmentation(controller.index, "XCVU37P") < frag_before
        deployment, _ = controller.deploy("gru-h1536-t375")
        assert deployment.placements[0].fpga_id in plan.target_fpgas
        assert controller.index.check_consistent()
        assert controller.stats.defrag_plans == 1
        assert controller.stats.migrations_completed == len(plan.migrations)

    def test_busy_victims_block_the_plan(self, shared_catalog):
        controller, cluster = _controller(shared_catalog)
        by_board = _shatter_vu37p(controller, cluster)
        for residents in by_board.values():
            residents[1].acquire()
            residents[3].acquire()
        assert controller.plan_defrag("gru-h1536-t375") is None

    def test_des_run_defrags_on_placement_failure(self, shared_catalog):
        PROFILER.reset()
        system = build_system(
            "proposed", paper_cluster(), shared_catalog, defrag=True
        )
        controller = system.controller
        _shatter_vu37p(controller, controller.cluster)
        simulator = ClusterSimulator(system, system.name)
        result = simulator.run(
            [Task(task_id=0, model_key="gru-h1536-t375", arrival_s=0.0)]
        )
        assert len(result.completed) == 1
        assert controller.stats.defrag_plans >= 1
        assert controller.stats.migrations_completed >= 1
        # The migration window is real simulated time: the task could not
        # start before the defrag completed.
        assert result.completed[0].start_s > 0.0
        assert controller.index.check_consistent()
        assert PROFILER.get("migration.completed") >= 1
        assert PROFILER.get("simulator.external_events") >= 1
        assert PROFILER.get("migration.bytes") > 0

    def test_victims_remain_functional_after_defrag(self, shared_catalog):
        system = build_system(
            "proposed", paper_cluster(), shared_catalog, defrag=True
        )
        controller = system.controller
        _shatter_vu37p(controller, controller.cluster)
        simulator = ClusterSimulator(system, system.name)
        tasks = [
            Task(task_id=0, model_key="gru-h1536-t375", arrival_s=0.0),
            Task(task_id=1, model_key="gru-h512-t1", arrival_s=0.0),
            Task(task_id=2, model_key="gru-h512-t1", arrival_s=0.01),
        ]
        result = simulator.run(tasks)
        assert len(result.completed) == 3
        moved = [
            d
            for d in controller.deployments.values()
            if d.migrations > 0
        ]
        assert moved, "defrag should have migrated at least one victim"


class TestOffByDefault:
    def test_controller_defaults_disabled(self, shared_catalog):
        controller = SystemController(
            paper_cluster(),
            shared_catalog,
            LowLevelController(shared_catalog.compiler.store),
        )
        assert controller.migration_enabled is False
        assert controller.plan_defrag("gru-h1536-t375") is None
        assert controller.stats.defrag_plans == 0

    def test_build_system_defaults_disabled(self, shared_catalog):
        system = build_system("proposed", paper_cluster(), shared_catalog)
        assert system.controller.migration_enabled is False
