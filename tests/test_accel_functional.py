"""Functional-simulator tests: ISA semantics, DRAM, loops, strides, and the
end-to-end GRU/LSTM correctness story (single accelerator vs numpy
reference; scale-out vs single bitwise)."""

import numpy as np
import pytest

from repro.accel.codegen import (
    OUT_BASE,
    GRUCodegen,
    LSTMCodegen,
    build_scaleout_programs,
    reference_output,
)
from repro.accel.functional import (
    DRAM,
    FunctionalSimulator,
    ScaleOutFabric,
    run_program,
    run_scaleout,
)
from repro.errors import ExecutionError
from repro.isa.assembler import assemble
from repro.isa.instructions import SYNC_ADDRESS
from repro.isa.program import Program


class TestDRAM:
    def test_write_read_roundtrip(self):
        dram = DRAM()
        dram.write(100, np.arange(8.0))
        assert np.array_equal(dram.read(100, 8), np.arange(8.0))

    def test_grows_on_demand(self):
        dram = DRAM(initial_words=4)
        dram.write(1_000_000, np.ones(16))
        assert dram.read(1_000_000, 16).sum() == 16

    def test_unwritten_reads_zero(self):
        assert DRAM().read(5, 3).sum() == 0.0

    def test_matrix_flattened(self):
        dram = DRAM()
        dram.write(0, np.arange(6.0).reshape(2, 3))
        assert np.array_equal(dram.read(0, 6), np.arange(6.0))


class TestBasicExecution:
    def _run(self, source, preload=None):
        return run_program(assemble(source), preload=preload)

    def test_fill_and_copy(self):
        sim = self._run("v_fill v0, 2.5, 4\nv_copy v1, v0, 4\nhalt\n")
        assert np.all(sim.vector(1) == 2.5)

    def test_arithmetic(self):
        sim = self._run(
            "v_fill v0, 3.0, 4\nv_fill v1, 2.0, 4\n"
            "vv_add v2, v0, v1, 4\nvv_sub v3, v0, v1, 4\n"
            "vv_mul v4, v0, v1, 4\nhalt\n"
        )
        assert sim.vector(2)[0] == 5.0
        assert sim.vector(3)[0] == 1.0
        assert sim.vector(4)[0] == 6.0

    def test_activations(self):
        sim = self._run(
            "v_fill v0, 0.0, 4\nv_sigm v1, v0, 4\nv_tanh v2, v0, 4\n"
            "v_fill v3, -2.0, 4\nv_relu v4, v3, 4\nhalt\n"
        )
        assert sim.vector(1)[0] == pytest.approx(0.5)
        assert sim.vector(2)[0] == 0.0
        assert np.all(sim.vector(4) == 0.0)

    def test_float16_rounding_applied(self):
        sim = self._run("v_fill v0, 0.1, 4\nhalt\n")
        assert sim.vector(0)[0] == np.float64(np.float16(0.1))

    def test_slice_and_concat(self):
        def preload(sim):
            sim.dram.write(0x10, np.arange(8.0))

        sim = self._run(
            "v_rd v0, 0x10, 8\nv_slice v1, v0, 2, 3\n"
            "v_concat v2, v1, v1, 6\nhalt\n",
            preload,
        )
        assert np.array_equal(sim.vector(1), [2.0, 3.0, 4.0])
        assert sim.vector(2).size == 6

    def test_loop_iterates(self):
        sim = self._run(
            "v_fill v0, 0.0, 2\nv_fill v1, 1.0, 2\n"
            "loop 5\nvv_add v0, v0, v1, 2\nendloop\nhalt\n"
        )
        assert sim.vector(0)[0] == 5.0

    def test_nested_loops(self):
        sim = self._run(
            "v_fill v0, 0.0, 2\nv_fill v1, 1.0, 2\n"
            "loop 3\nloop 4\nvv_add v0, v0, v1, 2\nendloop\nendloop\nhalt\n"
        )
        assert sim.vector(0)[0] == 12.0

    def test_strided_stream_read(self):
        """V_RD inside a loop advances by imm (stride) per iteration."""
        program = Program()
        from repro.isa.instructions import (
            Instruction, Op, endloop, halt, loop, v_wr,
        )

        program.extend(
            [
                loop(3),
                Instruction(Op.V_RD, dst=0, addr=0x100, length=2, imm=2.0),
                v_wr(0, 0x500, 2),
                endloop(),
                halt(),
            ]
        )

        def preload(sim):
            sim.dram.write(0x100, np.array([1.0, 2, 3, 4, 5, 6]))

        sim = run_program(program, preload=preload)
        # Last iteration read words 4 and 5.
        assert np.array_equal(sim.vector(0), [5.0, 6.0])

    def test_mv_mul_uses_bfp(self, gru_small):
        weights, _ = gru_small
        sim = FunctionalSimulator(assemble("nop\nhalt\n"))
        sim.load_matrix(0, weights.w[0])
        stored = sim.mrf[0]
        # Stored matrix is the BFP-quantised version, not the original.
        assert not np.array_equal(stored, weights.w[0])

    def test_stats_counted(self):
        sim = self._run("v_fill v0, 1.0, 4\nv_wr v0, 0x10, 4\nhalt\n")
        assert sim.stats.dram_writes == 1
        assert sim.stats.instructions == 2


class TestExecutionErrors:
    def test_uninitialised_register_read(self):
        with pytest.raises(ExecutionError, match="uninitialised"):
            run_program(assemble("v_copy v1, v0, 4\nhalt\n"))

    def test_mv_mul_unloaded_matrix(self):
        with pytest.raises(ExecutionError, match="unloaded matrix"):
            run_program(assemble("v_fill v0, 1.0, 4\nmv_mul v1, m0, v0, 4\nhalt\n"))

    def test_slice_out_of_range(self):
        with pytest.raises(ExecutionError, match="out of range"):
            run_program(
                assemble("v_fill v0, 1.0, 4\nv_slice v1, v0, 3, 4\nhalt\n")
            )

    def test_sync_without_fabric_rejected_at_validation(self):
        from repro.errors import ProgramValidationError

        with pytest.raises(ProgramValidationError, match="sync"):
            run_program(assemble("v_fill v0, 1.0, 4\nv_wr v0, SYNC, 4\nhalt\n"))

    def test_blocked_without_cosim_raises(self):
        fabric = ScaleOutFabric(2)
        program = assemble("v_rd v0, SYNC, 4\nhalt\n")
        sim = FunctionalSimulator(program, fabric=fabric, replica_index=0)
        with pytest.raises(ExecutionError, match="blocked"):
            sim.run()


class TestScaleOutFabric:
    def test_combines_in_replica_order(self):
        fabric = ScaleOutFabric(2)
        fabric.send(1, SYNC_ADDRESS, np.array([3.0, 4.0]))
        assert fabric.try_recv(0, SYNC_ADDRESS, 4) is None  # replica 0 missing
        fabric.send(0, SYNC_ADDRESS, np.array([1.0, 2.0]))
        combined = fabric.try_recv(0, SYNC_ADDRESS, 4)
        assert np.array_equal(combined, [1.0, 2.0, 3.0, 4.0])

    def test_rounds_are_independent_per_receiver(self):
        fabric = ScaleOutFabric(2)
        fabric.send(0, SYNC_ADDRESS, np.array([1.0]))
        fabric.send(1, SYNC_ADDRESS, np.array([2.0]))
        assert fabric.try_recv(0, SYNC_ADDRESS, 2) is not None
        # Replica 1 still sees round 0.
        assert np.array_equal(fabric.try_recv(1, SYNC_ADDRESS, 2), [1.0, 2.0])

    def test_length_mismatch_raises(self):
        fabric = ScaleOutFabric(2)
        fabric.send(0, SYNC_ADDRESS, np.array([1.0]))
        fabric.send(1, SYNC_ADDRESS, np.array([2.0]))
        with pytest.raises(ExecutionError, match="expected"):
            fabric.try_recv(0, SYNC_ADDRESS, 10)

    def test_bytes_counted(self):
        fabric = ScaleOutFabric(2)
        fabric.send(0, SYNC_ADDRESS, np.zeros(8))
        assert fabric.bytes_transferred == 16

    def test_send_accepts_plain_lists(self):
        """Regression: send read ``values.size`` before ``np.asarray``, so a
        plain Python list crashed with AttributeError."""
        fabric = ScaleOutFabric(2)
        fabric.send(0, SYNC_ADDRESS, [1.0, 2.0])
        fabric.send(1, SYNC_ADDRESS, [3.0, 4.0])
        assert fabric.bytes_transferred == 8
        combined = fabric.try_recv(0, SYNC_ADDRESS, 4)
        assert combined.dtype == np.float64
        assert np.array_equal(combined, [1.0, 2.0, 3.0, 4.0])


class TestEndToEndRNN:
    def test_gru_matches_reference(self, gru_small):
        weights, xs = gru_small
        gen = GRUCodegen(weights, xs.shape[0])
        sim = run_program(gen.build(), preload=lambda s: gen.preload(s, xs))
        out = sim.dram.read(OUT_BASE, weights.hidden)
        ref = reference_output(weights, xs)
        assert np.max(np.abs(out - ref)) < 0.06

    def test_lstm_matches_reference(self, lstm_small):
        weights, xs = lstm_small
        gen = LSTMCodegen(weights, xs.shape[0])
        sim = run_program(gen.build(), preload=lambda s: gen.preload(s, xs))
        out = sim.dram.read(OUT_BASE, weights.hidden)
        ref = reference_output(weights, xs)
        assert np.max(np.abs(out - ref)) < 0.06

    @pytest.mark.parametrize("kind", ["gru", "lstm"])
    @pytest.mark.parametrize("replicas", [2, 4])
    def test_scaleout_bitwise_equals_single(self, kind, replicas, gru_small, lstm_small):
        """The headline correctness property of the scale-down
        transformation: k replicas exchanging slices produce *bitwise* the
        single-accelerator result (slices are BFP-block aligned)."""
        weights, xs = gru_small if kind == "gru" else lstm_small
        h, t = weights.hidden, xs.shape[0]
        cls = GRUCodegen if kind == "gru" else LSTMCodegen

        single_gen = cls(weights, t)
        single = run_program(
            single_gen.build(), preload=lambda s: single_gen.preload(s, xs)
        )
        expected = single.dram.read(OUT_BASE, h)

        programs = build_scaleout_programs(kind, weights, t, replicas)
        gens = [
            cls(weights, t, replicas=replicas, replica_index=i)
            for i in range(replicas)
        ]
        sims, fabric = run_scaleout(
            programs, preload=lambda sim, i: gens[i].preload(sim, xs)
        )
        slice_rows = h // replicas
        combined = np.concatenate(
            [
                sim.dram.read(OUT_BASE + i * slice_rows, slice_rows)
                for i, sim in enumerate(sims)
            ]
        )
        assert np.array_equal(combined, expected)
        assert fabric.bytes_transferred > 0

    def test_scaleout_send_recv_counts(self, gru_small):
        weights, xs = gru_small
        t = xs.shape[0]
        programs = build_scaleout_programs("gru", weights, t, 2)
        gens = [
            GRUCodegen(weights, t, replicas=2, replica_index=i)
            for i in range(2)
        ]
        sims, _ = run_scaleout(
            programs, preload=lambda sim, i: gens[i].preload(sim, xs)
        )
        for sim in sims:
            assert sim.stats.sends == t + 1  # init + one per step
            assert sim.stats.recvs == t
