"""Unit-helper tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestTimeConversions:
    def test_us_roundtrip(self):
        assert units.to_us(units.us(0.6)) == pytest.approx(0.6)

    def test_ms_roundtrip(self):
        assert units.to_ms(units.ms(5.01)) == pytest.approx(5.01)

    def test_ns_is_small(self):
        assert units.ns(1) == pytest.approx(1e-9)

    def test_ordering(self):
        assert units.ns(1) < units.us(1) < units.ms(1)


class TestFrequency:
    def test_mhz_roundtrip(self):
        assert units.to_mhz(units.mhz(400)) == pytest.approx(400)

    def test_mhz_value(self):
        assert units.mhz(300) == pytest.approx(3e8)


class TestMemory:
    def test_mbit_roundtrip(self):
        assert units.to_mbit(units.mbit(51.5)) == pytest.approx(51.5)

    def test_kbit_mbit_relation(self):
        assert units.mbit(1) == units.kbit(1024)


class TestCompute:
    def test_tflops_roundtrip(self):
        assert units.to_tflops(units.tflops(36.0)) == pytest.approx(36.0)


class TestFormatting:
    def test_fmt_time_zero(self):
        assert units.fmt_time(0) == "0 s"

    def test_fmt_time_ms(self):
        assert units.fmt_time(0.00501) == "5.01 ms"

    def test_fmt_time_us(self):
        assert "us" in units.fmt_time(units.us(3))

    def test_fmt_time_seconds(self):
        assert units.fmt_time(2.5) == "2.5 s"

    def test_fmt_bits_mb(self):
        assert units.fmt_bits(units.mbit(51.5)) == "51.5 Mb"

    def test_fmt_bits_small(self):
        assert units.fmt_bits(100) == "100 b"


@given(st.floats(min_value=1e-9, max_value=1e3, allow_nan=False))
def test_time_conversion_is_monotone_and_invertible(value):
    assert units.to_ms(units.ms(value)) == pytest.approx(value, rel=1e-12)
    assert units.to_us(units.us(value)) == pytest.approx(value, rel=1e-12)


@given(st.floats(min_value=1e-6, max_value=1e6, allow_nan=False))
def test_fmt_time_always_has_unit(value):
    text = units.fmt_time(value)
    assert any(text.endswith(suffix) for suffix in (" s", " ms", " us", " ns"))
    assert not math.isnan(float(text.split()[0]))
