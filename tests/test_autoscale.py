"""Autoscaler tests (:mod:`repro.autoscale`).

Covers the policy knobs (validation), the replica-second ledger, the
hysteresis band (a steady queue depth inside the band never moves the
fleet, and a grow is never immediately undone), both scale-up paths
(widen-in-place and add-a-deployment), both scale-down paths (retire and
narrow, idle-only so in-flight work cannot be lost), fault-coordination
suppression, single-owner elasticity (the base system's reactive
expansion defers to an attached autoscaler), the late-bound breaker
half-open probes riding the DES, and a diurnal storm with the fault
injector armed where the full accounting identity must still close.
"""

from types import SimpleNamespace

import pytest

from repro.autoscale import (
    Autoscaler,
    AutoscaleParameters,
    ReplicaLedger,
    ScaleEvent,
)
from repro.cluster import ClusterSimulator, paper_cluster
from repro.errors import ReproError
from repro.faults import FaultInjector, FaultModelParameters
from repro.runtime import Catalog, build_system
from repro.serving import (
    BreakerState,
    Request,
    ServingFrontend,
    ServingParameters,
)
from repro.vital import VitalCompiler
from repro.workloads import diurnal_arrivals

MODEL = "gru-h512-t1"


@pytest.fixture(scope="module")
def catalog():
    return Catalog(VitalCompiler())


def _frontend(catalog, recovery=True, **param_overrides):
    cluster = paper_cluster()
    system = build_system("proposed", cluster, catalog, recovery=recovery)
    params = ServingParameters(**param_overrides)
    return cluster, system, ServingFrontend(system, params)


def _requests(count, model_key=MODEL, gap_s=0.001, deadline_s=0.0):
    return [
        Request(
            task_id=index,
            model_key=model_key,
            arrival_s=index * gap_s,
            size_class="S",
            deadline_s=deadline_s,
        )
        for index in range(count)
    ]


def _plan(controller, model_key=MODEL, replicas=1):
    entry = controller.catalog.entry_by_key(model_key)
    plans = [p for p in entry.sorted_plans() if p.replicas == replicas]
    assert plans, f"no replicas={replicas} plan for {model_key}"
    return plans[0]


def _place(controller, model_key=MODEL, replicas=1, now=0.0):
    placed = controller.place_plan(_plan(controller, model_key, replicas), now)
    assert placed is not None
    deployment, _ = placed
    return deployment


def _queue(frontend, count, model_key=MODEL, now=0.0):
    for request in _requests(count, model_key=model_key):
        assert frontend.admit(request, now)


def _drain_queue(frontend, model_key=MODEL):
    frontend._depth[model_key] = 0
    frontend._queued[model_key].clear()


class TestAutoscaleParameters:
    def test_defaults_valid(self):
        params = AutoscaleParameters()
        assert params.low_watermark < params.high_watermark
        assert params.min_replicas <= params.max_replicas

    def test_rejects_collapsed_hysteresis_band(self):
        with pytest.raises(ReproError):
            AutoscaleParameters(low_watermark=6, high_watermark=6)

    def test_rejects_inverted_replica_bounds(self):
        with pytest.raises(ReproError):
            AutoscaleParameters(min_replicas=4, max_replicas=2)

    def test_rejects_bad_alpha_interval_and_cooldowns(self):
        with pytest.raises(ReproError):
            AutoscaleParameters(rate_alpha=0.0)
        with pytest.raises(ReproError):
            AutoscaleParameters(interval_s=0.0)
        with pytest.raises(ReproError):
            AutoscaleParameters(up_cooldown_s=-1.0)
        with pytest.raises(ReproError):
            AutoscaleParameters(down_target_util=0.0)


class TestReplicaLedger:
    @staticmethod
    def _deployment(dep_id, replicas, blocks_per_replica=3, model_key=MODEL):
        image = SimpleNamespace(virtual_blocks=blocks_per_replica)
        plan = SimpleNamespace(replicas=replicas, images={"any": image})
        return SimpleNamespace(
            deployment_id=dep_id, model_key=model_key, plan=plan
        )

    def test_integrates_replica_seconds_exactly(self):
        ledger = ReplicaLedger()
        ledger.on_instantiate(self._deployment("d1", replicas=2), 1.0)
        # Open deployments are charged up to the probe instant without
        # being closed.
        totals = ledger.totals(3.0)
        assert totals["replica_seconds"] == pytest.approx(4.0)
        assert totals["block_seconds"] == pytest.approx(12.0)
        ledger.on_discard(self._deployment("d1", replicas=2), 2.5)
        totals = ledger.totals(100.0)
        assert totals["replica_seconds"] == pytest.approx(3.0)
        assert ledger.open_replicas() == 0

    def test_unknown_discard_is_tolerated(self):
        ledger = ReplicaLedger()
        ledger.on_discard(self._deployment("ghost", replicas=1), 5.0)
        assert ledger.totals(10.0)["replica_seconds"] == 0.0

    def test_open_replicas_filters_by_model(self):
        ledger = ReplicaLedger()
        ledger.on_instantiate(self._deployment("a", 2, model_key="m1"), 0.0)
        ledger.on_instantiate(self._deployment("b", 1, model_key="m2"), 0.0)
        assert ledger.open_replicas() == 3
        assert ledger.open_replicas("m1") == 2


class TestHysteresis:
    def test_steady_depth_inside_band_never_moves_the_fleet(self, catalog):
        cluster, system, frontend = _frontend(catalog)
        _place(system.controller)
        scaler = Autoscaler(frontend, AutoscaleParameters())
        # Depth 3 sits strictly between low (1) and high (6): the band
        # absorbs it no matter how many ticks pass.
        _queue(frontend, 3)
        for tick in range(50):
            scaler.evaluate(0.005 * (tick + 1))
        assert scaler.stats.scale_ups == 0
        assert scaler.stats.scale_downs == 0
        assert scaler.replica_units(MODEL) == 1

    def test_grow_is_never_immediately_undone(self, catalog):
        cluster, system, frontend = _frontend(catalog)
        controller = system.controller
        _place(controller)
        params = AutoscaleParameters(down_cooldown_s=0.1)
        scaler = Autoscaler(frontend, params)
        _queue(frontend, params.high_watermark)
        scaler.evaluate(0.01)
        assert scaler.stats.scale_ups == 1
        # The burst is served instantly and the queue empties — but the
        # down cooldown (measured from the scale-up too) holds the wider
        # fleet through the post-burst lull.
        _drain_queue(frontend)
        scaler.evaluate(0.02)
        scaler.evaluate(0.05)
        assert scaler.stats.scale_downs == 0
        scaler.evaluate(0.2)
        assert scaler.stats.scale_downs == 1

    def test_scale_up_stops_at_max_replicas(self, catalog):
        cluster, system, frontend = _frontend(catalog)
        controller = system.controller
        _place(controller, replicas=2)
        _place(controller, replicas=2)
        scaler = Autoscaler(
            frontend, AutoscaleParameters(max_replicas=4, up_cooldown_s=0.0)
        )
        _queue(frontend, 10)
        for tick in range(10):
            scaler.evaluate(0.01 * (tick + 1))
        assert scaler.replica_units(MODEL) == 4
        assert scaler.stats.scale_ups == 0


class TestScaleUpPaths:
    def test_widen_switches_idle_deployment_to_wider_plan(self, catalog):
        cluster, system, frontend = _frontend(catalog)
        controller = system.controller
        _place(controller, replicas=1)
        scaler = Autoscaler(frontend, AutoscaleParameters())
        _queue(frontend, 6)
        scaler.evaluate(0.01)
        assert scaler.stats.widenings == 1
        assert scaler.stats.additions == 0
        deployments = controller.deployments_of(MODEL)
        assert len(deployments) == 1
        assert deployments[0].plan.replicas == 2
        assert scaler.replica_units(MODEL) == 2

    def test_add_places_second_deployment_when_widen_disabled(self, catalog):
        cluster, system, frontend = _frontend(catalog)
        controller = system.controller
        _place(controller, replicas=1)
        scaler = Autoscaler(
            frontend, AutoscaleParameters(widen_enabled=False)
        )
        _queue(frontend, 6)
        scaler.evaluate(0.01)
        assert scaler.stats.additions == 1
        assert scaler.stats.widenings == 0
        assert len(controller.deployments_of(MODEL)) == 2

    def test_scale_up_emits_event_on_controller_ring(self, catalog):
        cluster, system, frontend = _frontend(catalog)
        controller = system.controller
        _place(controller)
        scaler = Autoscaler(frontend, AutoscaleParameters())
        _queue(frontend, 6)
        scaler.evaluate(0.01)
        events = [e for e in controller.events if isinstance(e, ScaleEvent)]
        assert len(events) == 1
        assert events[0].action in ("widen", "add")
        assert events[0].units_after > events[0].units_before


class TestScaleDownPaths:
    def test_retires_least_recently_used_idle_deployment(self, catalog):
        cluster, system, frontend = _frontend(catalog)
        controller = system.controller
        cold = _place(controller)
        warm = _place(controller)
        cold.last_used_s = 0.0
        warm.last_used_s = 1.0
        scaler = Autoscaler(frontend, AutoscaleParameters())
        scaler.evaluate(5.0)
        assert scaler.stats.retirements == 1
        survivors = controller.deployments_of(MODEL)
        assert [d.deployment_id for d in survivors] == [warm.deployment_id]

    def test_narrow_when_single_deployment(self, catalog):
        cluster, system, frontend = _frontend(catalog)
        controller = system.controller
        _place(controller, replicas=2)
        scaler = Autoscaler(frontend, AutoscaleParameters())
        scaler.evaluate(5.0)
        assert scaler.stats.narrowings == 1
        deployments = controller.deployments_of(MODEL)
        assert len(deployments) == 1
        assert deployments[0].plan.replicas == 1

    def test_scale_down_only_acts_on_idle_deployments(self, catalog):
        from repro.runtime.deployment import DeploymentState

        cluster, system, frontend = _frontend(catalog)
        controller = system.controller
        busy_a = _place(controller)
        busy_b = _place(controller)
        busy_a.state = DeploymentState.BUSY
        busy_b.state = DeploymentState.BUSY
        scaler = Autoscaler(frontend, AutoscaleParameters())
        scaler.evaluate(5.0)
        # Both deployments hold in-flight work: nothing may be touched.
        assert scaler.stats.scale_downs == 0
        assert len(controller.deployments_of(MODEL)) == 2

    def test_scale_down_respects_rate_headroom(self, catalog):
        cluster, system, frontend = _frontend(catalog)
        controller = system.controller
        _place(controller)
        _place(controller)
        scaler = Autoscaler(frontend, AutoscaleParameters())
        # An EWMA rate far beyond the surviving capacity blocks the
        # retirement even though the queue is momentarily empty.
        scaler._rate[MODEL] = 1e9
        scaler.evaluate(5.0)
        assert scaler.stats.scale_downs == 0

    def test_never_below_min_replicas(self, catalog):
        cluster, system, frontend = _frontend(catalog)
        controller = system.controller
        _place(controller)
        scaler = Autoscaler(frontend, AutoscaleParameters(min_replicas=1))
        for tick in range(20):
            scaler.evaluate(0.05 * (tick + 1))
        assert scaler.replica_units(MODEL) == 1
        assert scaler.stats.scale_downs == 0


class TestFaultCoordination:
    def test_board_failure_suppresses_scale_up(self, catalog):
        cluster, system, frontend = _frontend(catalog)
        controller = system.controller
        _place(controller)
        params = AutoscaleParameters(fault_suppress_s=0.15)
        scaler = Autoscaler(frontend, params)
        _queue(frontend, 6)
        # The cluster just lost capacity: growing into the hole would
        # fight the repair, so pressure is suppressed for the window...
        controller.stats.boards_failed += 1
        scaler.evaluate(0.01)
        assert scaler.stats.suppressed == 1
        assert scaler.stats.scale_ups == 0
        scaler.evaluate(0.05)
        assert scaler.stats.scale_ups == 0
        # ...and honoured again once the window closes.
        scaler.evaluate(0.01 + params.fault_suppress_s + 0.001)
        assert scaler.stats.scale_ups == 1

    def test_scale_down_recovery_also_suppresses(self, catalog):
        cluster, system, frontend = _frontend(catalog)
        controller = system.controller
        _place(controller)
        scaler = Autoscaler(frontend, AutoscaleParameters())
        _queue(frontend, 6)
        controller.stats.scale_down_recoveries += 1
        scaler.evaluate(0.01)
        assert scaler.stats.suppressed == 1
        assert scaler.stats.scale_ups == 0


class TestSingleOwnerElasticity:
    def test_attaching_autoscaler_disables_reactive_expansion(self, catalog):
        cluster, system, frontend = _frontend(catalog)
        assert system.expansion_enabled
        Autoscaler(frontend, AutoscaleParameters())
        assert not system.expansion_enabled
        assert frontend.autoscaler is not None


class TestBreakerProbesOnDES:
    def test_late_bind_drains_queued_probes_into_events(self, catalog):
        cluster, system, frontend = _frontend(
            catalog, breaker_cooldown_s=0.01, default_deadline_s=30.0
        )
        breaker = frontend.breaker("vu37p-0")
        # Two failure units inside the window trip the default 2.0
        # threshold; scheduled unbound, the probe lands on the kludge
        # list...
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.state is BreakerState.OPEN
        frontend._schedule_half_open(breaker, 0.0)
        assert frontend._due
        # ...and binding a simulator converts it into a first-class DES
        # event that fires during the run.
        simulator = ClusterSimulator(frontend, "late-bind")
        assert frontend._due == []
        simulator.run(_requests(4, gap_s=0.01))
        assert frontend.stats.breaker_half_opens >= 1
        assert breaker.state is not BreakerState.OPEN


def _storm(catalog, count=400, rate_per_s=3600.0, mtbf_s=None, seed=11):
    cluster, system, frontend = _frontend(
        catalog, max_queue_depth=64, default_deadline_s=0.25,
        brownout_enabled=False,
    )
    controller = system.controller
    ledger = ReplicaLedger()
    controller.ledger = ledger
    simulator = ClusterSimulator(frontend, f"autoscale-storm-{seed}")
    models = ("lstm-h256-t150", "gru-h512-t1")
    arrivals = diurnal_arrivals(
        count, rate_per_s, seed=seed,
        period_s=count / rate_per_s / 2.0, amplitude=0.9,
    )
    tasks = [
        Request(
            task_id=index,
            model_key=models[index % len(models)],
            arrival_s=arrival_s,
            size_class="S",
            deadline_s=0.0,
        )
        for index, arrival_s in enumerate(arrivals)
    ]
    for model in models:
        _place(controller, model_key=model)
    params = AutoscaleParameters(
        interval_s=0.002, up_cooldown_s=0.004, down_cooldown_s=0.02,
        max_replicas=4,
    )
    scaler = Autoscaler(frontend, params)
    scaler.bind_simulator(simulator)
    scaler.arm(tasks[-1].arrival_s)
    if mtbf_s is not None:
        injector = FaultInjector(
            simulator, controller,
            FaultModelParameters(mtbf_s=mtbf_s, mttr_s=0.01, seed=seed),
        )
        injector.arm(tasks[-1].arrival_s)
    result = simulator.run(tasks)
    return cluster, system, frontend, scaler, ledger, result


def _assert_storm_invariants(cluster, system, frontend, scaler, result):
    stats = frontend.stats
    # Accounting identity: scale-downs never lose a request — every
    # offered request still reaches exactly one terminal outcome.
    assert stats.offered == (
        stats.shed + stats.expired + stats.abandoned + stats.completed
    )
    assert stats.completed == len(result.completed)
    # Occupancy closes: blocks in use are exactly the blocks owned by
    # live deployments (retire/narrow leaked nothing).
    owners_by_board = {}
    for deployment in system.controller.deployments.values():
        for placement in deployment.placements:
            owners_by_board.setdefault(placement.fpga_id, 0)
            owners_by_board[placement.fpga_id] += placement.virtual_blocks
    for fpga_id, board in cluster.boards.items():
        assert board.used_blocks == owners_by_board.get(fpga_id, 0)
    assert system.controller.index.check_consistent()
    for model, depth in frontend._depth.items():
        assert depth == 0, f"{model} queue depth leaked: {depth}"
    # Every decision stayed inside the replica-unit envelope.
    params = scaler.params
    for event in system.controller.events:
        if not isinstance(event, ScaleEvent):
            continue
        if event.action in ("retire", "narrow"):
            assert event.units_after >= params.min_replicas
        else:
            assert event.units_after <= params.max_replicas


class TestAutoscaleStorm:
    def test_diurnal_storm_scales_and_conserves(self, catalog):
        cluster, system, frontend, scaler, ledger, result = _storm(catalog)
        assert scaler.stats.ticks > 10
        assert scaler.stats.scale_ups >= 1
        _assert_storm_invariants(cluster, system, frontend, scaler, result)
        # The ledger saw every placement and stays consistent with the
        # resident fleet at the end of the run.
        totals = ledger.totals(result.makespan_s)
        assert totals["replica_seconds"] > 0
        resident = sum(
            d.plan.replicas for d in system.controller.deployments.values()
        )
        assert ledger.open_replicas() == resident

    def test_storm_with_faults_still_conserves(self, catalog):
        cluster, system, frontend, scaler, ledger, result = _storm(
            catalog, mtbf_s=0.03, seed=13
        )
        _assert_storm_invariants(cluster, system, frontend, scaler, result)
