"""Extra coverage for the figure drivers: device variants, custom model
lists, and normalisation invariants."""

import pytest

from repro.experiments.fig11 import Fig11Curve, run_fig11
from repro.units import us
from repro.workloads.deepbench import ModelSpec


class TestFig11Variants:
    def test_custom_model_list(self):
        curves = run_fig11(
            sweep=(0.0, us(0.5)),
            models=(ModelSpec("lstm", 512, 25),),
        )
        assert len(curves) == 1
        assert curves[0].model.key == "lstm-h512-t25"

    def test_ku115_device(self):
        curves = run_fig11(
            sweep=(0.0, us(0.5)),
            models=(ModelSpec("gru", 1024, 100),),
            device_type="XCKU115",
        )
        # The slower device has a wider overlap window per step.
        v37 = run_fig11(
            sweep=(0.0, us(0.5)),
            models=(ModelSpec("gru", 1024, 100),),
            device_type="XCVU37P",
        )
        assert curves[0].overlap_window_s > v37[0].overlap_window_s

    def test_normalised_starts_at_one(self):
        curves = run_fig11(sweep=(0.0, us(1.0)))
        for curve in curves:
            normalised = curve.normalised()
            assert normalised[0] == pytest.approx(1.0)
            assert all(value >= 1.0 - 1e-12 for value in normalised)

    def test_hideable_never_negative(self):
        curve = Fig11Curve(model=ModelSpec("gru", 512, 1))
        curve.overlap_window_s = 0.1e-6
        curve.comm_at_zero_s = 5e-6
        assert curve.hideable_added_latency_s == 0.0

    def test_timesteps_scale_total_not_stall_rate(self):
        short = run_fig11(
            sweep=(us(2.0),), models=(ModelSpec("gru", 1024, 50),)
        )[0]
        long = run_fig11(
            sweep=(us(2.0),), models=(ModelSpec("gru", 1024, 500),)
        )[0]
        # Per-step stall identical => total scales ~linearly in t.
        assert long.latency_s[0] > 5 * short.latency_s[0]
