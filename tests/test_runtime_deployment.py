"""Deployment state-machine tests."""

import pytest

from repro.errors import DeploymentError
from repro.runtime.catalog import DeploymentPlan
from repro.runtime.deployment import (
    Deployment,
    DeploymentState,
    ReplicaPlacement,
)


def _deployment() -> Deployment:
    plan = DeploymentPlan(model_key="gru-h512-t1", replicas=1)
    return Deployment(
        deployment_id="dep-test",
        model_key="gru-h512-t1",
        plan=plan,
        placements=[
            ReplicaPlacement(
                fpga_id="vu37p-0", device_type="XCVU37P", virtual_blocks=4
            )
        ],
        service_s=0.001,
    )


class TestStateMachine:
    def test_starts_idle(self):
        deployment = _deployment()
        assert deployment.is_idle
        assert deployment.state is DeploymentState.IDLE

    def test_acquire_release_cycle(self):
        deployment = _deployment()
        deployment.acquire()
        assert deployment.state is DeploymentState.BUSY
        deployment.release(now=5.0)
        assert deployment.is_idle
        assert deployment.last_used_s == 5.0
        assert deployment.tasks_served == 1

    def test_double_acquire_rejected(self):
        deployment = _deployment()
        deployment.acquire()
        with pytest.raises(DeploymentError):
            deployment.acquire()

    def test_release_idle_rejected(self):
        with pytest.raises(DeploymentError):
            _deployment().release(now=0.0)

    def test_member_fpgas(self):
        assert _deployment().member_fpgas == ["vu37p-0"]

    def test_tasks_served_accumulates(self):
        deployment = _deployment()
        for stamp in (1.0, 2.0, 3.0):
            deployment.acquire()
            deployment.release(now=stamp)
        assert deployment.tasks_served == 3
        assert deployment.last_used_s == 3.0
