"""Tests for mapping records and tree rendering."""

import pytest

from repro.core import render_tree
from repro.core.mapping import AcceleratorMapping, ClusterImage, DeploymentOption
from repro.core.softblock import data_block, leaf_block
from repro.core.visualize import render_partition
from repro.resources import ResourceVector


def _image(cluster, device, blocks):
    return ClusterImage(
        cluster_index=cluster,
        device_type=device,
        virtual_blocks=blocks,
        frequency_hz=4e8,
        resources=ResourceVector(luts=100.0),
    )


def _option(option_id, clusters, images, cut_bits=0):
    option = DeploymentOption(
        accelerator="acc",
        option_id=option_id,
        cluster_indices=clusters,
        cut_bits=cut_bits,
    )
    for cluster, per_device in images.items():
        option.images[cluster] = per_device
    return option


class TestDeploymentOption:
    def test_feasible_types_sorted(self):
        option = _option(
            "o1", [1], {1: {"B": _image(1, "B", 2), "A": _image(1, "A", 3)}}
        )
        assert option.feasible_types(1) == ["A", "B"]

    def test_deployable_requires_all_clusters(self):
        option = _option("o1", [1, 2], {1: {"A": _image(1, "A", 2)}, 2: {}})
        assert not option.is_deployable()

    def test_deployable_true(self):
        option = _option(
            "o1", [1, 2],
            {1: {"A": _image(1, "A", 2)}, 2: {"A": _image(2, "A", 2)}},
        )
        assert option.is_deployable()

    def test_num_clusters(self):
        option = _option("o", [3, 4, 5], {3: {}, 4: {}, 5: {}})
        assert option.num_clusters == 3


class TestAcceleratorMapping:
    def _mapping(self):
        mapping = AcceleratorMapping(accelerator="acc", instance_name="acc-i")
        mapping.options.append(
            _option("two", [1, 2],
                    {1: {"A": _image(1, "A", 2)}, 2: {"A": _image(2, "A", 2)}},
                    cut_bits=64)
        )
        mapping.options.append(
            _option("one", [1], {1: {"A": _image(1, "A", 4)}})
        )
        return mapping

    def test_sorted_options_fewest_clusters_first(self):
        options = self._mapping().sorted_options()
        assert [o.option_id for o in options] == ["one", "two"]

    def test_undeployable_options_excluded(self):
        mapping = self._mapping()
        mapping.options.append(_option("broken", [9], {9: {}}))
        assert all(o.option_id != "broken" for o in mapping.sorted_options())

    def test_option_by_id(self):
        mapping = self._mapping()
        assert mapping.option_by_id("one").num_clusters == 1
        with pytest.raises(KeyError):
            mapping.option_by_id("ghost")


class TestRenderTree:
    def _tree(self):
        leaves = [
            leaf_block(f"l{i}", resources=ResourceVector(luts=1.0))
            for i in range(3)
        ]
        return data_block("root", leaves)

    def test_contains_all_nodes(self):
        text = render_tree(self._tree())
        for name in ("root", "l0", "l1", "l2"):
            assert name in text

    def test_max_depth_truncates(self):
        text = render_tree(self._tree(), max_depth=1)
        assert "l0" not in text
        assert "hidden" in text

    def test_renders_pattern_labels(self):
        assert "data-parallel x3" in render_tree(self._tree())


class TestRenderPartition:
    def test_shows_blocks_and_cuts(self, mini_partition):
        text = render_partition(mini_partition)
        assert "block #1" in text
        assert "cut" in text
