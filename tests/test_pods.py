"""Pod-sharded control plane tests.

Covers the router's structure and flat-equivalence contract (every query
and the lazy candidate streams match a flat :class:`PlacementIndex` over
the same boards, and whole simulated schedules are bit-identical pod vs
flat), the two index-corruption regressions (stale/duplicate
notifications must raise, not silently corrupt), the ring-adjacency
service-estimate regression, the board-residency reverse index, the
simulator's tombstone queue removal, and chaos storms across pods.
"""

import random

import pytest

from repro.cluster import ClusterSimulator, Task, scaled_cluster
from repro.cluster.topology import homogeneous_cluster, paper_cluster
from repro.errors import AllocationError
from repro.runtime import Catalog, build_system
from repro.runtime.controller import PlacementIndex, PlacementPolicy
from repro.runtime.pods import DEFAULT_POD_SIZE, PodRouter
from repro.vital import VitalCompiler
from repro.vital.device import XCVU37P
from repro.vital.virtual_block import BoardHealth, PhysicalFPGA
from repro.workloads import TABLE1_COMPOSITIONS, generate_workload
from repro.workloads.deepbench import model_by_key


@pytest.fixture(scope="module")
def shared_catalog():
    return Catalog(VitalCompiler())


def _proposed(cluster, catalog, **kwargs):
    return build_system("proposed", cluster, catalog, **kwargs)


class TestPodRouterStructure:
    def test_pods_partition_cluster_in_declaration_order(self):
        cluster = scaled_cluster(70)
        router = PodRouter(cluster, pod_size=32)
        assert [len(pod.board_ids) for pod in router.pods] == [32, 32, 6]
        declared = [board.fpga_id for board in cluster.boards.values()]
        chunked = [
            fpga_id for pod in router.pods for fpga_id in pod.board_ids
        ]
        assert chunked == declared
        assert router.check_consistent()

    def test_pod_of_maps_every_board(self):
        cluster = scaled_cluster(20)
        router = PodRouter(cluster, pod_size=8)
        for pod in router.pods:
            for fpga_id in pod.board_ids:
                assert router.pod_of(fpga_id) is pod

    def test_pod_size_resolution_order(self):
        explicit = PodRouter(scaled_cluster(8, pod_size=4), pod_size=2)
        assert explicit.pod_size == 2
        from_cluster = PodRouter(scaled_cluster(8, pod_size=4))
        assert from_cluster.pod_size == 4
        default = PodRouter(scaled_cluster(8))
        assert default.pod_size == DEFAULT_POD_SIZE

    def test_invalid_pod_size_rejected(self):
        with pytest.raises(ValueError):
            PodRouter(scaled_cluster(8), pod_size=0)

    def test_single_pod_on_paper_cluster(self):
        """The Fig. 12 platform fits one pod: the router IS the flat
        index there, which is what keeps the goldens bit-identical."""
        router = PodRouter(paper_cluster())
        assert router.pod_count() == 1


class TestRouterFlatEquivalence:
    """Every router query must equal the flat index over the same boards."""

    def _randomly_loaded(self, seed):
        cluster = scaled_cluster(24)
        router = PodRouter(cluster, pod_size=5)
        flat = PlacementIndex(cluster)
        rng = random.Random(seed)
        for at, board in enumerate(cluster.boards.values()):
            blocks = rng.randint(0, board.free_blocks)
            if blocks:
                board.allocate(f"dep-{at}", blocks)
        return cluster, router, flat

    @pytest.mark.parametrize("seed", [3, 17, 91])
    def test_flat_queries_match(self, seed):
        _, router, flat = self._randomly_loaded(seed)
        assert router.device_types() == flat.device_types()
        for device_type in flat.device_types():
            assert router.max_free(device_type) == flat.max_free(device_type)
            for blocks in (0, 1, 4, 9, 999):
                assert router.count_with_at_least(
                    device_type, blocks
                ) == flat.count_with_at_least(device_type, blocks)
            for query in ("boards_best_fit", "boards_worst_fit", "boards_by_id"):
                assert [
                    b.fpga_id for b in getattr(router, query)(device_type)
                ] == [b.fpga_id for b in getattr(flat, query)(device_type)]

    @pytest.mark.parametrize("seed", [5, 23])
    @pytest.mark.parametrize("policy", list(PlacementPolicy))
    def test_iter_candidates_matches_flat_order(self, seed, policy):
        _, router, flat = self._randomly_loaded(seed)
        requirements = {
            device_type: 3 for device_type in flat.device_types()
        }
        feasible = [
            entry
            for device_type, need in sorted(requirements.items())
            for entry in flat.entries_with_at_least(device_type, need)
        ]
        if policy is PlacementPolicy.BEST_FIT:
            expected = [fpga_id for _, fpga_id in sorted(feasible)]
        elif policy is PlacementPolicy.WORST_FIT:
            expected = [
                fpga_id
                for _, fpga_id in sorted(
                    feasible, key=lambda entry: (-entry[0], entry[1])
                )
            ]
        else:
            expected = sorted(fpga_id for _, fpga_id in feasible)
        streamed = [
            board.fpga_id
            for board in router.iter_candidates(requirements, policy)
        ]
        assert streamed == expected

    def test_feasibility_cache_revalidates_on_mutation(self, shared_catalog):
        cluster = scaled_cluster(8)
        router = PodRouter(cluster, pod_size=4)
        feasible_calls = []

        def feasible_fn(model_key, device_type, free):
            feasible_calls.append(device_type)
            return free >= 4

        assert router.any_feasible("m", feasible_fn)
        probes = len(feasible_calls)
        # Cached: no pod mutated, so no recomputation.
        assert router.any_feasible("m", feasible_fn)
        assert len(feasible_calls) == probes
        # Mutating one pod's board invalidates exactly that pod's entry.
        board = next(iter(cluster.boards.values()))
        board.allocate("d", 1)
        assert router.any_feasible("m", feasible_fn)
        assert len(feasible_calls) > probes


class TestIndexCorruptionRegression:
    """A stale or duplicated board notification used to bisect-pop
    whatever entry was at the insertion point — another board's entry —
    and silently corrupt the index.  It must raise instead."""

    def _index(self):
        board = PhysicalFPGA("b0", XCVU37P)
        other = PhysicalFPGA("b1", XCVU37P)
        return PlacementIndex([board, other]), board

    def test_stale_occupancy_notification_raises(self):
        index, board = self._index()
        with pytest.raises(AllocationError, match="index corruption"):
            index._on_change(board, board.free_blocks - 3)
        assert index.check_consistent()

    def test_duplicate_occupancy_notification_raises(self):
        index, board = self._index()
        old_free = board.free_blocks
        board.allocate("d", 2)  # delivers the genuine notification
        with pytest.raises(AllocationError, match="index corruption"):
            index._on_change(board, old_free)  # replayed: entry already moved
        assert index.check_consistent()

    def test_duplicate_health_notification_raises(self):
        index, board = self._index()
        board.set_health(BoardHealth.FAILED)  # genuine removal
        with pytest.raises(AllocationError, match="index corruption"):
            index._on_health(board, BoardHealth.HEALTHY)  # replayed removal
        assert index.check_consistent()

    def test_mismatch_does_not_remove_other_boards_entry(self):
        index, board = self._index()
        try:
            index._on_change(board, board.free_blocks + 1)
        except AllocationError:
            pass
        # The neighbour's entry survived the bad notification.
        assert index.check_consistent()


class TestServiceEstimateAdjacency:
    """Two same-type-mix assignments with different ring adjacency must
    not share one cached service estimate (the old cache key bug let
    ``_find_placement``'s min() rank the slower pair with the faster
    pair's number)."""

    def _two_replica_plan(self, controller):
        entry = controller.catalog.entry_by_key("gru-h2560-t375")
        for plan in entry.sorted_plans():
            if plan.replicas == 2 and "XCVU37P" in plan.images:
                return plan
        raise AssertionError("expected a 2-replica XCVU37P plan")

    def test_adjacency_changes_the_estimate(self, shared_catalog):
        cluster = homogeneous_cluster(XCVU37P, 6)
        system = _proposed(cluster, shared_catalog)
        controller = system.controller
        plan = self._two_replica_plan(controller)
        image = plan.images["XCVU37P"]
        boards = list(cluster.boards.values())
        adjacent = [(boards[0], image), (boards[1], image)]  # 1 hop
        far = [(boards[0], image), (boards[3], image)]  # 3 hops
        assert controller._hop_signature(adjacent) == 1
        assert controller._hop_signature(far) == 3
        est_adjacent = controller._estimate_service(plan, adjacent)
        est_far = controller._estimate_service(plan, far)
        assert est_far > est_adjacent

    def test_same_signature_still_shares_cache(self, shared_catalog):
        cluster = homogeneous_cluster(XCVU37P, 6)
        system = _proposed(cluster, shared_catalog)
        controller = system.controller
        plan = self._two_replica_plan(controller)
        image = plan.images["XCVU37P"]
        boards = list(cluster.boards.values())
        controller._estimate_service(
            plan, [(boards[0], image), (boards[1], image)]
        )
        entries = len(controller._service_cache)
        # A different adjacent pair: same types, same hop signature.
        controller._estimate_service(
            plan, [(boards[2], image), (boards[3], image)]
        )
        assert len(controller._service_cache) == entries


class _DeclineAll:
    def try_start(self, task, now):
        return None

    def on_finish(self, task, now):
        pass


class TestTombstoneRemoval:
    def _simulator_with_pending(self, count):
        simulator = ClusterSimulator(_DeclineAll())
        tasks = [
            Task(task_id=i, model_key=f"m{i % 3}", arrival_s=float(i))
            for i in range(count)
        ]
        simulator._pending.extend(tasks)
        return simulator, tasks

    def test_removal_preserves_scan_order(self):
        simulator, tasks = self._simulator_with_pending(10)
        for task in tasks[2:5]:
            simulator._remove_pending(task)
        assert [t.task_id for t in simulator._pending_tasks()] == [
            0, 1, 5, 6, 7, 8, 9
        ]
        assert simulator.pending_count == 7

    def test_compaction_triggers_and_preserves_order(self):
        simulator, tasks = self._simulator_with_pending(200)
        rng = random.Random(4)
        removed = set()
        for task in rng.sample(tasks, 150):
            simulator._remove_pending(task)
            removed.add(task.task_id)
        # Tombstones outnumber live entries well past the threshold: the
        # backing list must have been compacted.
        assert len(simulator._pending_dead) < 150
        expected = [t.task_id for t in tasks if t.task_id not in removed]
        assert [t.task_id for t in simulator._pending_tasks()] == expected
        assert simulator.pending_count == 50


class TestPodFlatScheduleEquivalence:
    """Randomized end-to-end equivalence: the pod-routed controller must
    produce bit-identical schedules to the flat (single-pod) controller."""

    def _schedule(self, catalog, board_count, pod_size, seed, task_count=90):
        cluster = scaled_cluster(board_count, pod_size=pod_size)
        system = _proposed(cluster, catalog)
        tasks = generate_workload(
            TABLE1_COMPOSITIONS[6],
            task_count=task_count,
            arrival_rate_per_s=1e5,
            seed=seed,
        )
        result = ClusterSimulator(system, "proposed").run(tasks)
        return [
            (task.task_id, task.start_s, task.finish_s)
            for task in result.completed
        ], system.controller

    @pytest.mark.parametrize("seed", [11, 12])
    def test_schedules_bit_identical_across_pod_sizes(
        self, shared_catalog, seed
    ):
        flat, flat_controller = self._schedule(
            shared_catalog, 12, pod_size=12, seed=seed
        )
        for pod_size in (3, 5):
            podded, controller = self._schedule(
                shared_catalog, 12, pod_size=pod_size, seed=seed
            )
            assert podded == flat
            assert (
                controller.stats.deployments_created
                == flat_controller.stats.deployments_created
            )

    def test_paper_cluster_single_board_pods_identical(self, shared_catalog):
        """The most extreme sharding (one board per pod) on the paper
        platform still reproduces the flat schedule exactly."""
        flat, _ = self._schedule(shared_catalog, 4, pod_size=4, seed=31)
        podded, _ = self._schedule(shared_catalog, 4, pod_size=1, seed=31)
        assert podded == flat


class TestResidencyIndex:
    def test_tracks_deploys_and_evictions(self, shared_catalog):
        cluster = paper_cluster()
        controller = _proposed(cluster, shared_catalog).controller
        first, _ = controller.deploy("gru-h512-t1")
        second, _ = controller.deploy("lstm-h256-t150")
        assert controller.check_residents_consistent()
        on_board = controller.deployments_on(first.placements[0].fpga_id)
        assert first in on_board
        controller.evict(first)
        assert controller.check_residents_consistent()
        assert first not in controller.deployments_on(
            second.placements[0].fpga_id
        )

    def test_deployments_on_creation_order(self, shared_catalog):
        cluster = paper_cluster()
        controller = _proposed(cluster, shared_catalog).controller
        keys = ["gru-h512-t1", "lstm-h256-t150", "lstm-h512-t25"]
        created = [controller.deploy(key)[0] for key in keys]
        shared = [
            board.fpga_id
            for board in cluster.boards.values()
            if len(board.owners()) >= 2
        ]
        assert shared, "expected spatial sharing on at least one board"
        residents = controller.deployments_on(shared[0])
        order = [created.index(d) for d in residents]
        assert order == sorted(order)

    def test_migration_updates_residency(self, shared_catalog):
        cluster = paper_cluster()
        system = _proposed(cluster, shared_catalog, defrag=True)
        controller = system.controller
        deployment, _ = controller.deploy("gru-h512-t1")
        src = deployment.placements[0].fpga_id
        image_types = deployment.plan.images
        destination = next(
            board
            for board in cluster.boards.values()
            if board.fpga_id != src
            and board.model.name in image_types
            and board.can_host(image_types[board.model.name].virtual_blocks)
        )
        controller.migration.migrate(deployment, {0: destination})
        assert controller.check_residents_consistent()
        assert deployment not in controller.deployments_on(src)
        assert deployment in controller.deployments_on(destination.fpga_id)


def _chaos_storm(board_count, pod_size, steps, seed, catalog):
    """Deploy/evict/fail/repair storm; returns (cluster, controller)."""
    cluster = scaled_cluster(board_count, pod_size=pod_size)
    system = _proposed(cluster, catalog, recovery=True)
    controller = system.controller
    rng = random.Random(seed)
    keys = ["gru-h512-t1", "lstm-h256-t150", "lstm-h512-t25", "gru-h1536-t375"]
    board_ids = sorted(cluster.boards)
    live = []
    now = 0.0
    for _step in range(steps):
        now += 0.005
        action = rng.random()
        if action < 0.5:
            try:
                deployment, _ = controller.deploy(rng.choice(keys), now=now)
            except AllocationError:
                pass
            else:
                live.append(deployment)
        elif action < 0.65 and live:
            deployment = live.pop(rng.randrange(len(live)))
            if deployment.deployment_id in controller.deployments:
                controller.evict(deployment)
        elif action < 0.85:
            board = cluster.board(rng.choice(board_ids))
            if board.health is BoardHealth.HEALTHY:
                controller.on_board_failure(board, now)
        else:
            board = cluster.board(rng.choice(board_ids))
            if board.health is not BoardHealth.HEALTHY:
                controller.on_board_repair(board, now)
        live = [
            d for d in live if d.deployment_id in controller.deployments
        ]
    return cluster, controller


class TestPodChaosInvariants:
    def test_storm_keeps_pods_consistent(self, shared_catalog):
        """Moderate scale in tier-1: failures/repairs/evictions across 64
        boards and 8 pods leave every per-pod index and the residency
        index equal to a from-scratch recount."""
        cluster, controller = _chaos_storm(
            64, pod_size=8, steps=220, seed=77, catalog=shared_catalog
        )
        assert controller.index.check_consistent()
        assert controller.check_residents_consistent()
        for board in cluster.boards.values():
            assert board.free_blocks == board.recount_free_blocks()
        assert controller.stats.boards_failed > 0
        assert controller.stats.boards_repaired > 0

    @pytest.mark.slow
    def test_thousand_board_chaos_storm(self, shared_catalog):
        """The 1000-board acceptance storm (nightly): pods stay
        consistent through sustained failure/repair churn at full scale."""
        cluster, controller = _chaos_storm(
            1000, pod_size=32, steps=1500, seed=2025, catalog=shared_catalog
        )
        assert controller.index.pod_count() == 32
        assert controller.index.check_consistent()
        assert controller.check_residents_consistent()
        for board in cluster.boards.values():
            assert board.free_blocks == board.recount_free_blocks()
        assert controller.stats.boards_failed > 100
        assert controller.stats.recoveries > 0
