"""Cycle-model tests: per-instruction costs, fit rules, virtualization
overheads and monotonicity properties."""

import pytest

from repro.accel import BW_K115, BW_V37, CycleModel
from repro.accel.timing import (
    ModelDoesNotFitError,
    TimingParameters,
    VirtualizationContext,
)
from repro.isa.instructions import (
    Instruction,
    Op,
    mv_mul,
    v_rd,
    vv_add,
)
from repro.workloads.deepbench import ModelSpec


def _mv(rows, cols):
    from dataclasses import replace

    return replace(mv_mul(0, 0, 1, rows), imm=float(cols))


class TestInstructionCycles:
    def setup_method(self):
        self.model = CycleModel(BW_V37)

    def test_mv_mul_pool_model(self):
        streaming, fixed = self.model.instruction_cycles(_mv(1024, 1024))
        import math

        blocks = math.ceil(1024 / 128) * math.ceil(1024 / 16)
        assert streaming == math.ceil(blocks / 21)
        assert fixed == self.model.params.mvu_depth + self.model.params.decode_cycles

    def test_mv_mul_streaming_penalty(self):
        full, _ = self.model.instruction_cycles(_mv(1024, 1024), 1.0)
        partial, _ = self.model.instruction_cycles(_mv(1024, 1024), 0.5)
        assert partial == pytest.approx(full * 2.0)

    def test_mfu_scales_with_lanes(self):
        long_op, _ = self.model.instruction_cycles(vv_add(0, 1, 2, 4096))
        short_op, _ = self.model.instruction_cycles(vv_add(0, 1, 2, 64))
        assert long_op > short_op

    def test_dram_transfer(self):
        streaming, fixed = self.model.instruction_cycles(v_rd(0, 0x100, 1024))
        assert streaming == pytest.approx(1024 * 2 / 64)
        assert fixed > 0

    def test_sync_free_here(self):
        from repro.isa.instructions import SYNC_ADDRESS

        streaming, fixed = self.model.instruction_cycles(
            v_rd(0, SYNC_ADDRESS, 1024)
        )
        assert streaming == 0.0  # accounted by the overlap model

    def test_control_ops_cheap(self):
        streaming, fixed = self.model.instruction_cycles(Instruction(Op.NOP))
        assert streaming == 0.0
        assert fixed == self.model.params.decode_cycles


class TestLatency:
    def _program(self, spec=ModelSpec("gru", 512, 10)):
        return spec.program()

    def test_more_tiles_never_slower(self):
        program = self._program(ModelSpec("gru", 512, 10))
        few = CycleModel(BW_V37.with_tiles(5)).latency(program)
        many = CycleModel(BW_V37).latency(program)
        assert many.seconds <= few.seconds

    def test_longer_sequence_scales(self):
        short = CycleModel(BW_V37).latency(self._program(ModelSpec("gru", 512, 10)))
        long = CycleModel(BW_V37).latency(self._program(ModelSpec("gru", 512, 100)))
        assert long.cycles == pytest.approx(short.cycles * 10, rel=0.02)

    def test_weight_loads_excluded_by_default(self):
        program = self._program()
        with_loads = CycleModel(BW_V37).latency(program, exclude_tags=frozenset())
        without = CycleModel(BW_V37).latency(program)
        assert with_loads.cycles > without.cycles

    def test_invocation_overhead_included(self):
        report = CycleModel(BW_V37).latency(self._program())
        assert report.invocation_seconds == pytest.approx(
            CycleModel(BW_V37).params.invocation_overhead_s
        )

    def test_invocation_can_be_excluded(self):
        report = CycleModel(BW_V37).latency(
            self._program(), include_invocation=False
        )
        assert report.invocation_seconds == 0.0

    def test_k115_slower_than_v37(self):
        program = self._program(ModelSpec("gru", 1024, 100))
        v37 = CycleModel(BW_V37).latency(program)
        k115 = CycleModel(BW_K115).latency(program)
        assert k115.seconds > v37.seconds


class TestFitRules:
    def test_small_model_fits_everywhere(self):
        program = ModelSpec("gru", 512, 1).program()
        assert CycleModel(BW_V37).fits(program)
        assert CycleModel(BW_K115).fits(program)

    def test_lstm1536_does_not_fit_k115(self):
        """Table 4's dash."""
        program = ModelSpec("lstm", 1536, 50).program()
        assert CycleModel(BW_V37).fits(program)
        assert not CycleModel(BW_K115).fits(program)
        with pytest.raises(ModelDoesNotFitError):
            CycleModel(BW_K115).latency(program)

    def test_gru2560_needs_two_fpgas(self):
        """Fig. 11's premise: the large GRU only runs split in two."""
        spec = ModelSpec("gru", 2560, 10)
        whole = spec.program()
        half = spec.program(replicas=2, replica_index=0)
        assert not CycleModel(BW_V37).fits(whole)
        assert CycleModel(BW_V37).fits(half)


class TestVirtualization:
    def _overhead(self, spec, pattern_aware=True):
        program = spec.program()
        model = CycleModel(BW_V37)
        return model.overhead_vs_baseline(
            program,
            VirtualizationContext(virtual_blocks=14, pattern_aware=pattern_aware),
        )

    @pytest.mark.parametrize(
        "spec",
        [
            ModelSpec("gru", 512, 1),
            ModelSpec("gru", 1024, 1500),
            ModelSpec("lstm", 512, 25),
            ModelSpec("lstm", 1536, 50),
        ],
    )
    def test_overhead_in_paper_band(self, spec):
        """Table 4's headline: virtualization costs only 3-9%."""
        overhead = self._overhead(spec)
        assert 0.03 <= overhead <= 0.09

    def test_naive_partitioning_costs_more(self):
        """The ablation behind 'we use the partition tool provided by this
        framework instead of ViTAL's' (Section 4.3)."""
        spec = ModelSpec("gru", 1024, 100)
        aware = self._overhead(spec, pattern_aware=True)
        naive = self._overhead(spec, pattern_aware=False)
        assert naive > 1.5 * aware

    def test_virtualized_never_faster(self):
        program = ModelSpec("lstm", 512, 25).program()
        model = CycleModel(BW_V37)
        base = model.latency(program)
        virt = model.latency(
            program, virtualization=VirtualizationContext(virtual_blocks=10)
        )
        assert virt.seconds > base.seconds
        assert virt.interface_cycles > 0

    def test_custom_timing_parameters(self):
        params = TimingParameters(interface_stages=8)
        program = ModelSpec("gru", 512, 10).program()
        cheap = CycleModel(BW_V37).latency(
            program, virtualization=VirtualizationContext(5)
        )
        pricey = CycleModel(BW_V37, params).latency(
            program, virtualization=VirtualizationContext(5)
        )
        assert pricey.interface_cycles > cheap.interface_cycles
