"""Codegen tests: program shape, addressing, slicing and tags."""

import numpy as np
import pytest

from repro.accel.codegen import (
    MAT_BASE,
    OUT_BASE,
    X_BASE,
    GRUCodegen,
    LSTMCodegen,
    RNNWeights,
    make_codegen,
)
from repro.errors import ISAError
from repro.isa.instructions import Op


def _meta_weights(kind="gru", hidden=64, input_dim=None):
    gates = 3 if kind == "gru" else 4
    return RNNWeights(
        kind=kind,
        hidden=hidden,
        input_dim=input_dim or hidden,
        w=[None] * gates,
        u=[None] * gates,
        b=[None] * gates,
    )


class TestRNNWeights:
    def test_random_shapes(self):
        weights = RNNWeights.random("lstm", 16, 8, seed=0)
        assert weights.gates == 4
        assert weights.w[0].shape == (16, 8)
        assert weights.u[0].shape == (16, 16)

    def test_unknown_kind(self):
        with pytest.raises(ISAError):
            RNNWeights.random("rnn", 16)

    def test_parameter_count(self):
        weights = _meta_weights("gru", hidden=64)
        assert weights.parameter_count == 3 * (64 * 64 + 64 * 64)

    def test_deterministic_by_seed(self):
        a = RNNWeights.random("gru", 8, seed=5)
        b = RNNWeights.random("gru", 8, seed=5)
        assert np.array_equal(a.w[0], b.w[0])


class TestProgramShape:
    def test_gru_op_census(self):
        program = GRUCodegen(_meta_weights(), timesteps=7).build()
        assert program.count_op(Op.M_RD) == 6  # 3 gates x (W, U)
        assert program.count_op(Op.MV_MUL) == 6
        assert program.count_op(Op.LOOP) == 1
        assert program.count_op(Op.HALT) == 1

    def test_lstm_op_census(self):
        program = LSTMCodegen(_meta_weights("lstm"), timesteps=7).build()
        assert program.count_op(Op.M_RD) == 8
        assert program.count_op(Op.MV_MUL) == 8

    def test_metadata(self):
        program = GRUCodegen(_meta_weights(), timesteps=9).build()
        assert program.metadata["timesteps"] == 9
        assert program.metadata["hidden"] == 64
        assert program.metadata["replicas"] == 1

    def test_x_load_strided(self):
        program = GRUCodegen(_meta_weights(), timesteps=3).build()
        load = next(i for i in program.instructions if i.tag == "load:x")
        assert load.addr == X_BASE
        assert load.imm == 64.0  # stride = input_dim

    def test_mv_mul_cols_in_imm(self):
        program = GRUCodegen(
            _meta_weights(hidden=64, input_dim=32), timesteps=2
        ).build()
        w_mv = next(i for i in program.instructions if i.tag == "compute:x")
        u_mv = next(i for i in program.instructions if i.tag == "consume:h")
        assert int(w_mv.imm) == 32
        assert int(u_mv.imm) == 64

    def test_tags_present(self):
        program = GRUCodegen(_meta_weights(), timesteps=2).build()
        tags = {inst.tag for inst in program.instructions}
        assert {"produce:h", "consume:h", "compute:x", "broadcast:h"} <= tags

    def test_output_written_to_slice_offset(self):
        program = GRUCodegen(
            _meta_weights(), timesteps=2, replicas=2, replica_index=1
        ).build()
        store = next(i for i in program.instructions if i.tag == "store:h")
        assert store.addr == OUT_BASE + 32

    def test_rejects_indivisible_hidden(self):
        with pytest.raises(ISAError, match="divisible"):
            GRUCodegen(_meta_weights(hidden=30), timesteps=1, replicas=4)

    def test_rejects_zero_timesteps(self):
        with pytest.raises(ISAError):
            GRUCodegen(_meta_weights(), timesteps=0)

    def test_wrong_gate_count_rejected(self):
        with pytest.raises(ISAError, match="gates"):
            GRUCodegen(_meta_weights("lstm"), timesteps=1)


class TestSlicing:
    def test_replica_matrix_addresses_offset_by_rows(self):
        gen0 = GRUCodegen(_meta_weights(), 1, replicas=2, replica_index=0)
        gen1 = GRUCodegen(_meta_weights(), 1, replicas=2, replica_index=1)
        # U matrix of gate 0: replica 1 starts 32 rows x 64 cols later.
        assert (
            gen1._matrix_addr("u", 0) - gen0._matrix_addr("u", 0) == 32 * 64
        )

    def test_w_then_u_layout(self):
        gen = GRUCodegen(_meta_weights(hidden=64, input_dim=32), 1)
        assert gen._matrix_addr("w", 0) == MAT_BASE
        assert gen._matrix_addr("u", 0) == MAT_BASE + 64 * 32

    def test_bias_addresses_sliced(self):
        gen1 = GRUCodegen(_meta_weights(), 1, replicas=2, replica_index=1)
        gen0 = GRUCodegen(_meta_weights(), 1, replicas=2, replica_index=0)
        assert gen1._bias_addr(0) - gen0._bias_addr(0) == 32

    def test_replica_program_lengths_sliced(self):
        program = GRUCodegen(
            _meta_weights(), 2, replicas=2, replica_index=0
        ).build()
        mv = next(i for i in program.instructions if i.tag == "consume:h")
        assert mv.length == 32  # output rows are sliced
        assert int(mv.imm) == 64  # but consume the full hidden vector

    def test_single_replica_broadcasts(self):
        program = GRUCodegen(_meta_weights(), 2).build()
        assert any(i.tag == "broadcast:h" for i in program.instructions)

    def test_multi_replica_template_has_no_broadcast(self):
        program = GRUCodegen(
            _meta_weights(), 2, replicas=2, replica_index=0
        ).build()
        assert not any(i.tag == "broadcast:h" for i in program.instructions)


class TestFactory:
    def test_make_codegen_dispatch(self):
        weights = _meta_weights("lstm")
        gen = make_codegen("LSTM", weights, 2)
        assert isinstance(gen, LSTMCodegen)

    def test_make_codegen_unknown(self):
        with pytest.raises(ISAError):
            make_codegen("transformer", _meta_weights(), 1)


class TestPreloadValidation:
    def test_wrong_xs_shape_rejected(self, gru_small):
        from repro.accel.functional import FunctionalSimulator
        from repro.isa.assembler import assemble

        weights, _ = gru_small
        gen = GRUCodegen(weights, timesteps=4)
        sim = FunctionalSimulator(assemble("nop\nhalt\n"))
        with pytest.raises(ISAError, match="shape"):
            gen.preload(sim, np.zeros((3, weights.hidden)))
