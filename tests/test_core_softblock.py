"""Soft-block tree tests, including hypothesis properties on random trees."""

import pytest
from hypothesis import given, strategies as st

from repro.core import BlockRole, PatternKind, SoftBlock
from repro.core.patterns import describe_pattern
from repro.core.softblock import (
    data_block,
    leaf_block,
    pipeline_block,
    reduction_block,
)
from repro.errors import MappingError
from repro.resources import ResourceVector


def _leaf(name="leaf", luts=10.0):
    return leaf_block(name, resources=ResourceVector(luts=luts))


class TestConstruction:
    def test_leaf_has_no_children(self):
        block = _leaf()
        assert block.is_leaf
        assert block.kind is PatternKind.LEAF

    def test_leaf_rejects_children(self):
        with pytest.raises(MappingError):
            SoftBlock("bad", PatternKind.LEAF, children=[_leaf()])

    def test_composite_needs_two_children(self):
        with pytest.raises(MappingError):
            data_block("bad", [_leaf()])

    def test_block_ids_unique(self):
        a, b = _leaf("a"), _leaf("b")
        assert a.block_id != b.block_id

    def test_role_default_data(self):
        assert _leaf().role is BlockRole.DATA

    def test_control_role(self):
        block = leaf_block("ctl", role=BlockRole.CONTROL)
        assert block.role is BlockRole.CONTROL


class TestStructure:
    def test_leaves_left_to_right(self):
        tree = pipeline_block("p", [_leaf("a"), _leaf("b"), _leaf("c")])
        assert [leaf.name for leaf in tree.leaves()] == ["a", "b", "c"]

    def test_depth(self):
        inner = data_block("d", [_leaf(), _leaf()])
        tree = pipeline_block("p", [inner, _leaf()])
        assert tree.depth() == 3
        assert _leaf().depth() == 1

    def test_count(self):
        tree = data_block("d", [_leaf(), _leaf(), _leaf()])
        assert tree.count() == 4

    def test_arity_profile(self):
        tree = data_block("d", [_leaf(), _leaf()])
        profile = tree.arity_profile()
        assert profile[("data", 2)] == 1
        assert profile[("leaf", 0)] == 2

    def test_iter_blocks_preorder(self):
        tree = pipeline_block("p", [_leaf("a"), _leaf("b")])
        names = [block.name for block in tree.iter_blocks()]
        assert names == ["p", "a", "b"]


class TestResources:
    def test_leaf_reports_own(self):
        assert _leaf(luts=7.0).resources().luts == 7.0

    def test_composite_sums_children(self):
        tree = data_block("d", [_leaf(luts=3.0), _leaf(luts=4.0)])
        assert tree.resources().luts == 7.0

    def test_nested_sum(self):
        inner = pipeline_block("p", [_leaf(luts=1.0), _leaf(luts=2.0)])
        tree = data_block("d", [inner, _leaf(luts=4.0)])
        assert tree.resources().luts == 7.0


class TestSignatures:
    def test_leaf_signature_from_module(self):
        assert leaf_block("x", module_name="mod").signature == "leaf:mod"

    def test_composite_signature_includes_pattern(self):
        tree = data_block("d", [_leaf("a"), _leaf("a")])
        assert tree.signature.startswith("data(")

    def test_pipeline_and_data_signatures_differ(self):
        children = lambda: [_leaf("a"), _leaf("a")]  # noqa: E731
        assert (
            data_block("d", children()).signature
            != pipeline_block("p", children()).signature
        )


class TestClone:
    def test_clone_is_deep_and_fresh_ids(self):
        tree = pipeline_block("p", [_leaf("a"), _leaf("b")])
        copy = tree.clone()
        assert copy.block_id != tree.block_id
        assert copy.signature == tree.signature
        assert [leaf.name for leaf in copy.leaves()] == ["a", "b"]
        copy.children[0].name = "mutated"
        assert tree.children[0].name == "a"

    def test_clone_preserves_resources(self):
        tree = data_block("d", [_leaf(luts=5.0), _leaf(luts=6.0)])
        assert tree.clone().resources() == tree.resources()


class TestReduction:
    def test_reduction_pattern_shape(self):
        """The paper's Fig. 2c: reduction = DATA stage + combiner pipeline."""
        tree = reduction_block(
            "red", [_leaf("m0"), _leaf("m1")], [_leaf("c0"), _leaf("c1")]
        )
        assert tree.kind is PatternKind.PIPELINE
        assert tree.children[0].kind is PatternKind.DATA
        assert tree.children[1].kind is PatternKind.PIPELINE

    def test_reduction_single_combiner(self):
        tree = reduction_block("red", [_leaf(), _leaf()], [_leaf("c")])
        assert len(tree.children) == 2
        assert tree.children[1].is_leaf


class TestDescribePattern:
    def test_leaf(self):
        assert describe_pattern(PatternKind.LEAF, 0) == "leaf"

    def test_data(self):
        assert describe_pattern(PatternKind.DATA, 4) == "data-parallel x4"

    def test_pipeline(self):
        assert "3 stages" in describe_pattern(PatternKind.PIPELINE, 3)


# -- hypothesis: random pattern trees ------------------------------------------


@st.composite
def soft_trees(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        return leaf_block(
            f"l{draw(st.integers(0, 99))}",
            resources=ResourceVector(luts=float(draw(st.integers(1, 100)))),
        )
    kind = draw(st.sampled_from([data_block, pipeline_block]))
    count = draw(st.integers(2, 4))
    children = [draw(soft_trees(depth=depth - 1)) for _ in range(count)]
    return kind("node", children)


@given(soft_trees())
def test_leaf_count_matches_resources(tree):
    total = sum(leaf.resources().luts for leaf in tree.leaves())
    assert tree.resources().luts == pytest.approx(total)


@given(soft_trees())
def test_count_is_one_plus_children_counts(tree):
    assert tree.count() == 1 + sum(child.count() for child in tree.children)


@given(soft_trees())
def test_clone_preserves_structure(tree):
    copy = tree.clone()
    assert copy.count() == tree.count()
    assert copy.depth() == tree.depth()
    assert copy.signature == tree.signature
    original_ids = {block.block_id for block in tree.iter_blocks()}
    copy_ids = {block.block_id for block in copy.iter_blocks()}
    assert original_ids.isdisjoint(copy_ids)
