"""Tests for the two scale-out tools: communication insertion and
dependency-safe reordering (paper Section 2.3)."""

import numpy as np
import pytest

from repro.accel.codegen import GRUCodegen, RNNWeights, build_scaleout_programs
from repro.errors import ISAError
from repro.isa.comm_insertion import ScaleOutPlan, insert_scaleout_communication
from repro.isa.instructions import Op
from repro.isa.program import Program
from repro.isa.reorder import overlap_window, reorder_for_overlap


@pytest.fixture
def replica_programs():
    weights = RNNWeights(
        kind="gru", hidden=64, input_dim=64, w=[None] * 3, u=[None] * 3,
        b=[None] * 3,
    )
    return build_scaleout_programs("gru", weights, timesteps=3, replicas=2)


class TestScaleOutPlan:
    def test_slice_length(self):
        plan = ScaleOutPlan(2, 0, "h", 64, 12, 1)
        assert plan.slice_length == 32

    def test_rejects_single_replica(self):
        with pytest.raises(ISAError):
            ScaleOutPlan(1, 0, "h", 64, 12, 1)

    def test_rejects_bad_index(self):
        with pytest.raises(ISAError):
            ScaleOutPlan(2, 5, "h", 64, 12, 1)

    def test_rejects_indivisible_length(self):
        with pytest.raises(ISAError):
            ScaleOutPlan(3, 0, "h", 64, 12, 1)

    def test_distinct_values_get_distinct_windows(self):
        a = ScaleOutPlan(2, 0, "h", 64, 12, 1)
        b = ScaleOutPlan(2, 0, "c", 64, 14, 2)
        assert a.send_address != b.send_address


class TestInsertion:
    def test_requires_tags(self):
        program = Program(name="untagged")
        plan = ScaleOutPlan(2, 0, "h", 64, 12, 1)
        with pytest.raises(ISAError, match="produce:h"):
            insert_scaleout_communication(program, plan)

    def test_send_after_every_producer(self, replica_programs):
        program = replica_programs[0]
        instructions = program.instructions
        for index, inst in enumerate(instructions):
            if inst.tag == "produce:h":
                assert instructions[index + 1].is_send

    def test_recv_at_loop_body_top(self, replica_programs):
        instructions = replica_programs[0].instructions
        loop_at = next(
            i for i, inst in enumerate(instructions) if inst.op is Op.LOOP
        )
        body = instructions[loop_at + 1 :]
        first_recv = next(i for i, inst in enumerate(body) if inst.is_recv)
        first_consume = next(
            i for i, inst in enumerate(body) if inst.tag == "consume:h"
        )
        assert first_recv < first_consume

    def test_send_recv_lengths(self, replica_programs):
        program = replica_programs[0]
        sends = [i for i in program.instructions if i.is_send]
        recvs = [i for i in program.instructions if i.is_recv]
        assert all(send.length == 32 for send in sends)
        assert all(recv.length == 64 for recv in recvs)

    def test_metadata_recorded(self, replica_programs):
        meta = replica_programs[1].metadata["scaleout"]
        assert meta["replicas"] == 2
        assert meta["replica_index"] == 1
        assert meta["slice_length"] == 32

    def test_programs_validate(self, replica_programs):
        for program in replica_programs:
            program.validate(allow_sync=True)


class TestReorder:
    def test_respects_dependences(self, replica_programs):
        """Reordered regions are valid topological orders of the original
        dependence graph (checked by reconstruction)."""
        program = replica_programs[0]
        reordered = reorder_for_overlap(program)
        # Same multiset of instructions overall.
        assert sorted(i.render() for i in reordered) == sorted(
            i.render() for i in program
        )

    def test_recv_sinks_below_x_compute(self, replica_programs):
        reordered = reorder_for_overlap(replica_programs[0])
        body = _loop_body(reordered)
        recv_at = next(i for i, inst in enumerate(body) if inst.is_recv)
        x_ops = [i for i, inst in enumerate(body) if inst.tag == "compute:x"]
        assert x_ops and all(index < recv_at for index in x_ops)

    def test_consume_stays_after_recv(self, replica_programs):
        reordered = reorder_for_overlap(replica_programs[0])
        body = _loop_body(reordered)
        recv_at = next(i for i, inst in enumerate(body) if inst.is_recv)
        consumes = [
            i for i, inst in enumerate(body) if inst.tag == "consume:h"
        ]
        assert consumes and all(index > recv_at for index in consumes)

    def test_overlap_window_nonempty_after_reorder(self, replica_programs):
        body = _loop_body(reorder_for_overlap(replica_programs[0]))
        window = overlap_window(body)
        assert len(window) >= 3  # x load + 3 W*x matmuls at least

    def test_overlap_window_empty_without_reorder(self):
        weights = RNNWeights(
            kind="gru", hidden=64, input_dim=64, w=[None] * 3, u=[None] * 3,
            b=[None] * 3,
        )
        programs = build_scaleout_programs(
            "gru", weights, timesteps=3, replicas=2, reorder=False
        )
        body = _loop_body(programs[0])
        assert overlap_window(body) == []

    def test_reorder_idempotent_semantics(self, replica_programs):
        once = reorder_for_overlap(replica_programs[0])
        twice = reorder_for_overlap(once)
        assert [i.render() for i in _loop_body(once)] == [
            i.render() for i in _loop_body(twice)
        ]


class TestReorderedExecutionCorrect:
    def test_scaleout_reordered_matches_plain(self, gru_small):
        """Reordering must not change results: co-simulate both versions."""
        from repro.accel.codegen import OUT_BASE
        from repro.accel.functional import run_scaleout

        weights, xs = gru_small
        h = weights.hidden

        outputs = []
        for reorder in (False, True):
            programs = build_scaleout_programs(
                "gru", weights, timesteps=xs.shape[0], replicas=2,
                reorder=reorder,
            )
            gens = [
                GRUCodegen(weights, xs.shape[0], replicas=2, replica_index=i)
                for i in range(2)
            ]
            sims, _ = run_scaleout(
                programs, preload=lambda sim, i: gens[i].preload(sim, xs)
            )
            combined = np.concatenate(
                [
                    sim.dram.read(OUT_BASE + i * (h // 2), h // 2)
                    for i, sim in enumerate(sims)
                ]
            )
            outputs.append(combined)
        assert np.array_equal(outputs[0], outputs[1])


def _loop_body(program: Program) -> list:
    body = []
    depth = 0
    for inst in program.instructions:
        if inst.op is Op.LOOP:
            depth += 1
            continue
        if inst.op is Op.ENDLOOP:
            depth -= 1
            continue
        if depth > 0:
            body.append(inst)
    return body
