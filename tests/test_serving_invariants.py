"""Property tests for the serving edge: rejected work never holds boards.

The central robustness invariant: a request that was shed, expired,
breaker-rejected or abandoned must never have occupied a board — all
cluster blocks are accounted for by live deployments at every point, and
the frontend's accounting identity (offered = terminal outcomes) closes
exactly.  Exercised under randomized overload storms with the fault
injector armed, in the style of ``test_allocator_invariants``.
"""

import random

import pytest

from repro.cluster import ClusterSimulator, paper_cluster
from repro.faults import FaultInjector, FaultModelParameters
from repro.runtime import Catalog, build_system
from repro.serving import (
    Request,
    RequestOutcome,
    ServingFrontend,
    ServingParameters,
    SheddingPolicy,
)
from repro.vital import VitalCompiler
from repro.workloads import mmpp_arrivals

MODELS = ("gru-h512-t1", "lstm-h256-t150", "lstm-h512-t25")


@pytest.fixture(scope="module")
def catalog():
    return Catalog(VitalCompiler())


def _storm_tasks(count, rate_per_s, seed, deadline_jitter=False):
    arrivals = mmpp_arrivals(count, rate_per_s, seed=seed)
    rng = random.Random(seed)
    tasks = []
    for index, arrival_s in enumerate(arrivals):
        deadline = 0.0
        if deadline_jitter:
            deadline = arrival_s + rng.uniform(0.002, 0.2)
        tasks.append(
            Request(
                task_id=index,
                model_key=MODELS[index % len(MODELS)],
                arrival_s=arrival_s,
                size_class="S",
                deadline_s=deadline,
            )
        )
    return tasks


def _run_storm(catalog, seed, rate_per_s=4000.0, count=150, mtbf_s=None,
               **param_overrides):
    cluster = paper_cluster()
    system = build_system("proposed", cluster, catalog, recovery=True)
    defaults = dict(default_deadline_s=0.05, max_queue_depth=4)
    defaults.update(param_overrides)
    frontend = ServingFrontend(system, ServingParameters(**defaults))
    simulator = ClusterSimulator(frontend, f"storm-{seed}")
    if mtbf_s is not None:
        injector = FaultInjector(
            simulator,
            system.controller,
            FaultModelParameters(mtbf_s=mtbf_s, mttr_s=0.05, seed=seed),
        )
        injector.arm(count / rate_per_s * 4)
    tasks = _storm_tasks(count, rate_per_s, seed, deadline_jitter=True)
    result = simulator.run(tasks)
    return cluster, system, frontend, result


def _assert_invariants(cluster, system, frontend, result):
    stats = frontend.stats
    # 1. Accounting identity: every offered request reached exactly one
    #    terminal outcome.
    assert stats.offered == (
        stats.shed + stats.expired + stats.abandoned + stats.completed
    )
    if frontend.params.shedding is SheddingPolicy.TAIL_DROP:
        # Tail drop rejects at the door, so sheds never count as admitted.
        assert stats.admitted == stats.offered - stats.shed
    else:
        # Head drop admits the arrival and sheds an *already admitted*
        # queued request instead.
        assert stats.admitted >= stats.offered - stats.shed
    assert stats.completed == len(result.completed)
    # 2. Rejected work never held a board: dropped tasks never started.
    for task in result.dropped:
        assert task.start_s < 0
        record = frontend.record_for(task.task_id)
        assert record.outcome in (
            RequestOutcome.SHED,
            RequestOutcome.EXPIRED,
            RequestOutcome.ABANDONED,
        )
        assert not record.started
        assert record.board_ids == []
    # 3. Completed requests did start, and only they did.
    started = {t.task_id for t in result.completed}
    for task_id, record in frontend._records.items():
        assert record.started == (task_id in started)
    # 4. Occupancy closes: blocks in use are exactly the blocks owned by
    #    live deployments (nothing leaked by drops or recoveries).
    owners_by_board = {}
    for deployment in system.controller.deployments.values():
        for placement in deployment.placements:
            owners_by_board.setdefault(placement.fpga_id, 0)
            owners_by_board[placement.fpga_id] += placement.virtual_blocks
    for fpga_id, board in cluster.boards.items():
        assert board.used_blocks == owners_by_board.get(fpga_id, 0)
    # 5. The placement index survived the storm.
    assert system.controller.index.check_consistent()
    # 6. Internal queue accounting drained to zero.
    for model, depth in frontend._depth.items():
        assert depth == 0, f"{model} queue depth leaked: {depth}"
    for model, queue in frontend._queued.items():
        assert not queue, f"{model} queue not drained"


class TestServingInvariants:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_overload_storm_without_faults(self, catalog, seed):
        cluster, system, frontend, result = _run_storm(catalog, seed)
        assert frontend.stats.shed > 0 or frontend.stats.expired > 0
        _assert_invariants(cluster, system, frontend, result)

    @pytest.mark.parametrize("seed", [4, 5, 6])
    def test_overload_storm_with_faults(self, catalog, seed):
        cluster, system, frontend, result = _run_storm(
            catalog, seed, mtbf_s=0.2
        )
        _assert_invariants(cluster, system, frontend, result)

    def test_head_drop_storm(self, catalog):
        cluster, system, frontend, result = _run_storm(
            catalog, 7, shedding=SheddingPolicy.HEAD_DROP
        )
        assert frontend.stats.shed > 0
        _assert_invariants(cluster, system, frontend, result)

    def test_token_bucket_storm(self, catalog):
        cluster, system, frontend, result = _run_storm(
            catalog, 8, admission_rate_per_s=500.0, admission_burst=8.0
        )
        assert frontend.stats.shed > 0
        _assert_invariants(cluster, system, frontend, result)

    def test_storm_with_tight_breakers_and_brownout(self, catalog):
        cluster, system, frontend, result = _run_storm(
            catalog,
            9,
            mtbf_s=0.1,
            breaker_threshold=1.0,
            breaker_cooldown_s=0.02,
            brownout_high_watermark=0.4,
            brownout_low_watermark=0.2,
            brownout_hot_depth=2,
        )
        _assert_invariants(cluster, system, frontend, result)

    def test_goodput_survives_the_storm(self, catalog):
        """Graceful degradation: even at ~4x overload with faults, the
        admitted requests that complete overwhelmingly meet their SLO."""
        _, _, frontend, result = _run_storm(catalog, 10, mtbf_s=0.5)
        stats = frontend.stats
        assert stats.completed > 0
        assert stats.slo_attainment() >= 0.9
