"""Tests for the structural RTL IR core types."""

import pytest

from repro.errors import RTLValidationError, UnknownModuleError
from repro.rtl.ir import Design, Direction, Module, Port, connect_chain


class TestPort:
    def test_positive_width_required(self):
        with pytest.raises(RTLValidationError):
            Port("a", Direction.INPUT, 0)

    def test_direction_flip(self):
        assert Direction.INPUT.flipped() is Direction.OUTPUT
        assert Direction.OUTPUT.flipped() is Direction.INPUT
        assert Direction.INOUT.flipped() is Direction.INOUT


class TestModule:
    def test_port_creates_implicit_net(self):
        module = Module("m")
        module.add_port("a", Direction.INPUT, 8)
        assert module.net_width("a") == 8

    def test_duplicate_port_rejected(self):
        module = Module("m")
        module.add_port("a", Direction.INPUT)
        with pytest.raises(RTLValidationError):
            module.add_port("a", Direction.OUTPUT)

    def test_duplicate_net_rejected(self):
        module = Module("m")
        module.add_net("n")
        with pytest.raises(RTLValidationError):
            module.add_net("n")

    def test_duplicate_instance_rejected(self):
        module = Module("m")
        module.add_instance("u0", "child")
        with pytest.raises(RTLValidationError):
            module.add_instance("u0", "child")

    def test_unknown_net_width_raises(self):
        module = Module("m")
        with pytest.raises(RTLValidationError):
            module.net_width("ghost")

    def test_input_output_port_filters(self):
        module = Module("m")
        module.add_port("a", Direction.INPUT)
        module.add_port("y", Direction.OUTPUT)
        module.add_port("z", Direction.OUTPUT)
        assert [p.name for p in module.input_ports()] == ["a"]
        assert [p.name for p in module.output_ports()] == ["y", "z"]

    def test_net_drivers_and_consumers(self):
        design = Design("d")
        child = Module("child")
        child.add_port("i", Direction.INPUT, 1)
        child.add_port("o", Direction.OUTPUT, 1)
        design.add_module(child)
        top = Module("top")
        top.add_net("w")
        top.add_instance("u0", "child", {"o": "w"})
        top.add_instance("u1", "child", {"i": "w"})
        design.add_module(top)
        design.top = "top"
        drivers = top.net_drivers("w", design)
        consumers = top.net_consumers("w", design)
        assert [inst.name for inst, _ in drivers] == ["u0"]
        assert [inst.name for inst, _ in consumers] == ["u1"]


class TestDesign:
    def test_top_unset_raises(self):
        with pytest.raises(RTLValidationError):
            Design("d").top_module

    def test_require_module_unknown(self):
        with pytest.raises(UnknownModuleError):
            Design("d").require_module("nope")

    def test_duplicate_module_rejected(self):
        design = Design("d")
        design.add_module(Module("m"))
        with pytest.raises(RTLValidationError):
            design.add_module(Module("m"))

    def test_ports_of_primitive(self):
        design = Design("d")
        ports = design.ports_of("DFF")
        assert set(ports) == {"clk", "d", "q"}

    def test_ports_of_unknown(self):
        with pytest.raises(UnknownModuleError):
            Design("d").ports_of("mystery")

    def test_reachable_modules(self, mini_design):
        reachable = mini_design.reachable_modules()
        assert reachable[0] == "top"
        assert "lane" in reachable and "stage_a" in reachable

    def test_instance_counts(self, mini_design):
        counts = mini_design.instance_counts()
        assert counts["lane"] == 4
        assert counts["stage_a"] == 1  # one per lane definition

    def test_submodule_names_excludes_primitives(self, mini_design):
        names = mini_design.submodule_names("lane")
        assert names == {"stage_a", "stage_b", "stage_c"}


class TestConnectChain:
    def test_chains_instances_with_fresh_nets(self):
        design = Design("d")
        stage = Module("stage")
        stage.add_port("i", Direction.INPUT, 1)
        stage.add_port("o", Direction.OUTPUT, 1)
        design.add_module(stage)
        top = Module("top")
        instances = [top.add_instance(f"s{i}", "stage") for i in range(3)]
        connect_chain(top, instances, "o", "i")
        assert instances[0].connections["o"] == "chain_0"
        assert instances[1].connections["i"] == "chain_0"
        assert instances[1].connections["o"] == "chain_1"
        assert instances[2].connections["i"] == "chain_1"
