"""Accelerator-configuration and parameterised-memory tests."""

import pytest

from repro.accel.config import (
    BRAM36_BITS,
    BW_K115,
    BW_V37,
    URAM288_BITS,
    AcceleratorConfig,
    MemoryPlan,
    scaled_config,
)
from repro.accel.memory import (
    build_weight_memory,
    memory_resources,
    usable_words,
    utilisation_of_uram,
)
from repro.errors import ReproError
from repro.rtl import validate_design
from repro.rtl.ir import Design
from repro.units import mhz, to_tflops


class TestMemoryPlan:
    def test_physical_bits(self):
        plan = MemoryPlan(bram_blocks_per_tile=2, uram_blocks_per_tile=1)
        assert plan.physical_bits_per_tile == 2 * BRAM36_BITS + URAM288_BITS

    def test_usable_bits_uram_limited(self):
        """The unified 512-word interface wastes 7/8 of each URAM —
        the under-utilisation the paper points out (Section 3)."""
        plan = MemoryPlan(bram_blocks_per_tile=0, uram_blocks_per_tile=1)
        assert plan.usable_bits_per_tile == 512 * 72
        assert plan.usable_bits_per_tile < URAM288_BITS

    def test_uram_utilisation_fraction(self):
        plan = MemoryPlan(bram_blocks_per_tile=0, uram_blocks_per_tile=4)
        assert utilisation_of_uram(plan) == pytest.approx(512 * 72 / URAM288_BITS)

    def test_uram_utilisation_nan_without_uram(self):
        import math

        assert math.isnan(utilisation_of_uram(MemoryPlan(4, 0)))

    def test_usable_words(self):
        plan = MemoryPlan(bram_blocks_per_tile=1, uram_blocks_per_tile=0)
        assert usable_words(plan) == 512


class TestAcceleratorConfig:
    def test_rejects_zero_tiles(self):
        with pytest.raises(ReproError):
            AcceleratorConfig(name="bad", tiles=0)

    def test_peak_flops(self):
        config = AcceleratorConfig(
            name="c", tiles=21, frequency_hz=mhz(400)
        )
        assert to_tflops(config.peak_flops) == pytest.approx(34.4, rel=0.01)

    def test_k115_peak(self):
        assert to_tflops(BW_K115.peak_flops) == pytest.approx(16.0, rel=0.01)

    def test_macs_per_cycle(self):
        config = AcceleratorConfig(name="c", tiles=2)
        assert config.macs_per_cycle == 2 * 128 * 16

    def test_weight_capacity_sums_tiles(self):
        assert (
            BW_V37.weight_capacity_bits
            == 21 * BW_V37.memory.usable_bits_per_tile
        )

    def test_resident_fraction_clamps_at_one(self):
        assert BW_V37.weights_resident_fraction(10) == 1.0

    def test_resident_fraction_partial(self):
        huge = BW_V37.weight_capacity_bits  # bits; words = bits/weight_bits
        words = int(2 * huge / BW_V37.weight_bits)
        assert BW_V37.weights_resident_fraction(words) == pytest.approx(0.5)

    def test_with_frequency(self):
        faster = BW_K115.with_frequency(mhz(400))
        assert faster.frequency_hz == mhz(400)
        assert faster.tiles == BW_K115.tiles

    def test_with_tiles_names(self):
        small = BW_V37.with_tiles(4)
        assert small.tiles == 4
        assert "4" in small.name


class TestScaledConfig:
    def test_halves_tiles(self):
        assert scaled_config(BW_V37, 2).tiles == 10

    def test_never_below_one(self):
        assert scaled_config(BW_V37.with_tiles(2), 8).tiles == 1

    def test_rejects_bad_factor(self):
        with pytest.raises(ReproError):
            scaled_config(BW_V37, 0)

    def test_name_records_factor(self):
        assert "sd2" in scaled_config(BW_V37, 2).name


class TestWeightMemoryModule:
    def _design_with(self, module):
        design = Design("d")
        design.add_module(module)
        design.top = module.name
        return design

    def test_mixed_plan_builds_valid_module(self):
        module = build_weight_memory(MemoryPlan(70, 4))
        warnings = validate_design(self._design_with(module))
        assert all("dangling" in w or "undriven" in w for w in warnings)

    def test_bram_only_plan(self):
        module = build_weight_memory(MemoryPlan(100, 0), name="wm_k")
        cells = {inst.module_name for inst in module.instances.values()}
        assert cells == {"BRAM36"}

    def test_declared_resources_match_plan(self):
        plan = MemoryPlan(70, 4)
        module = build_weight_memory(plan)
        declared = module.attributes["resources"]
        assert declared.bram_bits == 70 * BRAM36_BITS
        assert declared.uram_bits == 4 * URAM288_BITS

    def test_resources_helper_includes_interface_logic(self):
        assert memory_resources(MemoryPlan(10, 0)).luts > 0

    def test_unified_interface_ports(self):
        module = build_weight_memory(MemoryPlan(1, 0))
        assert module.ports["dout"].width == 72
        assert module.ports["addr_r"].width == 9

    def test_degenerate_plan(self):
        module = build_weight_memory(MemoryPlan(0, 0))
        assert not module.instances  # pass-through only
