"""Golden-output tests for the Fig. 12 experiment.

The allocator/DES overhaul (placement index, cached free-block counters,
watermark-gated dispatch) must be a pure performance change: every skipped
placement attempt is one the scheduler would provably have declined.  These
tests pin the experiment output bit-for-bit against snapshots captured from
the pre-overhaul exhaustive-rescan implementation — throughputs are
compared by ``repr`` so even a last-ulp drift fails.

The reduced-scale snapshot runs in the default test path; the full
10-composition x 3-seed run is ``slow``-marked (see ``pyproject.toml``).
"""

import json
import pathlib

import pytest

from repro.experiments.fig12 import average_speedups, run_fig12

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def _check_against(golden_path: pathlib.Path) -> None:
    golden = json.loads(golden_path.read_text())
    rows = run_fig12(
        task_count=golden["task_count"], seeds=tuple(golden["seeds"])
    )
    assert len(rows) == len(golden["rows"])
    for row, expected in zip(rows, golden["rows"]):
        assert row.composition.index == expected["index"]
        actual = {name: repr(value) for name, value in row.throughput.items()}
        assert actual == expected["throughput"], (
            f"set {expected['index']}: throughput drifted from the "
            f"pre-overhaul implementation"
        )
    assert [repr(v) for v in average_speedups(rows)] == golden["avg_speedups"]


def test_fig12_rows_match_pre_overhaul_golden_small():
    _check_against(GOLDEN_DIR / "fig12_small.json")


@pytest.mark.slow
def test_fig12_rows_match_pre_overhaul_golden_full():
    _check_against(GOLDEN_DIR / "fig12_full.json")
