"""Assembler and binary-encoder tests, including hypothesis round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AssemblerError, EncodingError
from repro.isa.assembler import assemble, disassemble
from repro.isa.encoder import (
    INSTRUCTION_BYTES,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)
from repro.isa.instructions import SYNC_ADDRESS, Instruction, Op
from repro.isa.program import Program

SOURCE = """
; GRU-ish snippet
m_rd  m0, 0x100000, 64
v_rd  v1, 0x80, 64
loop 10
  mv_mul v2, m0, v1, 64
  vv_add v2, v2, v1, 64
  v_sigm v2, v2, 64
endloop
v_wr v2, 0x40, 64
halt
"""


class TestAssembler:
    def test_assembles_ops_in_order(self):
        program = assemble(SOURCE)
        ops = [inst.op for inst in program]
        assert ops == [
            Op.M_RD, Op.V_RD, Op.LOOP, Op.MV_MUL, Op.VV_ADD, Op.V_SIGM,
            Op.ENDLOOP, Op.V_WR, Op.HALT,
        ]

    def test_hex_and_decimal_addresses(self):
        program = assemble("v_rd v0, 0x10, 4\nv_rd v1, 16, 4\n")
        assert program[0].addr == program[1].addr == 16

    def test_sync_symbol(self):
        program = assemble("v_wr v0, SYNC, 8\nv_rd v1, SYNC+0x1000, 8\n")
        assert program[0].addr == SYNC_ADDRESS
        assert program[1].addr == SYNC_ADDRESS + 0x1000
        assert program[0].is_send and program[1].is_recv

    def test_v_fill_float(self):
        program = assemble("v_fill v3, -1.5, 16\n")
        assert program[0].imm == pytest.approx(-1.5)

    def test_v_slice(self):
        program = assemble("v_slice v1, v0, 8, 4\n")
        assert program[0].imm == 8.0 and program[0].length == 4

    def test_comments_and_blank_lines_ignored(self):
        program = assemble("; only comments\n\nnop ; trailing\n")
        assert len(program) == 1

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frobnicate v0\n")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="expects"):
            assemble("vv_add v0, v1\n")

    def test_wrong_register_class(self):
        with pytest.raises(AssemblerError, match="m-register"):
            assemble("mv_mul v0, v1, v2, 8\n")

    def test_error_reports_line(self):
        try:
            assemble("nop\nbroken_op\n")
        except AssemblerError as err:
            assert err.line == 2
        else:  # pragma: no cover
            pytest.fail("expected AssemblerError")

    def test_disassemble_roundtrip(self):
        program = assemble(SOURCE)
        again = assemble(disassemble(program))
        assert [i.render() for i in again] == [i.render() for i in program]


class TestEncoder:
    def test_instruction_width(self):
        blob = encode_instruction(Instruction(Op.NOP))
        assert len(blob) == INSTRUCTION_BYTES

    def test_program_roundtrip(self):
        program = assemble(SOURCE)
        again = decode_program(encode_program(program))
        assert len(again) == len(program)
        for original, decoded in zip(program, again):
            assert decoded.op is original.op
            assert decoded.dst == original.dst
            assert decoded.a == original.a
            assert decoded.length == original.length

    def test_loop_count_survives(self):
        program = Program()
        program.append(Instruction(Op.LOOP, imm=1500.0))
        decoded = decode_program(encode_program(program))
        assert int(decoded[0].imm) == 1500

    def test_sync_address_survives(self):
        inst = Instruction(Op.V_WR, a=1, addr=SYNC_ADDRESS, length=8)
        assert decode_instruction(encode_instruction(inst)).is_send

    def test_length_overflow_rejected(self):
        with pytest.raises(EncodingError):
            encode_instruction(Instruction(Op.V_RD, dst=0, addr=0, length=70000))

    def test_bad_blob_length_rejected(self):
        with pytest.raises(EncodingError):
            decode_instruction(b"\x00" * 7)

    def test_unknown_opcode_rejected(self):
        blob = bytearray(encode_instruction(Instruction(Op.NOP)))
        blob[0] = 0xEE
        with pytest.raises(EncodingError):
            decode_instruction(bytes(blob))

    def test_misaligned_program_rejected(self):
        with pytest.raises(EncodingError):
            decode_program(b"\x00" * (INSTRUCTION_BYTES + 1))

    def test_code_density(self):
        """The compact-code claim: a whole GRU step loop fits in well under
        one KiB (the instruction buffer holds entire benchmark programs)."""
        program = assemble(SOURCE)
        assert len(encode_program(program)) <= 1024


_REGISTER = st.integers(min_value=0, max_value=63)
_LENGTH = st.integers(min_value=0, max_value=4096)


@st.composite
def encodable_instructions(draw):
    op = draw(st.sampled_from([
        Op.V_RD, Op.V_WR, Op.M_RD, Op.MV_MUL, Op.VV_ADD, Op.VV_SUB,
        Op.VV_MUL, Op.V_SIGM, Op.V_TANH, Op.V_RELU, Op.V_COPY, Op.V_FILL,
        Op.NOP, Op.HALT,
    ]))
    return Instruction(
        op,
        dst=draw(_REGISTER),
        a=draw(_REGISTER),
        b=draw(_REGISTER),
        ma=draw(_REGISTER),
        addr=draw(st.integers(min_value=0, max_value=0xFFFF0FFF)),
        imm=float(draw(st.integers(-1000, 1000))),
        length=draw(_LENGTH),
    )


@given(encodable_instructions())
def test_encode_decode_preserves_fields(inst):
    decoded = decode_instruction(encode_instruction(inst))
    assert decoded.op is inst.op
    assert decoded.dst == inst.dst
    assert decoded.a == inst.a
    assert decoded.b == inst.b
    assert decoded.ma == inst.ma
    assert decoded.length == inst.length
    if inst.op in (Op.V_RD, Op.V_WR, Op.M_RD):
        assert decoded.addr == inst.addr
    assert decoded.imm == pytest.approx(inst.imm)
