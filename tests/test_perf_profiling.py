"""The profiling registry and its wiring into the runtime hot paths."""

import time

from repro.cluster import ClusterSimulator, paper_cluster
from repro.cluster.simulator import Task
from repro.perf.profiling import PROFILER, Profiler
from repro.runtime import Catalog, build_system
from repro.vital import VitalCompiler
from repro.workloads.deepbench import MODEL_POOL


class TestProfiler:
    def test_counters_accumulate_and_reset(self):
        profiler = Profiler()
        profiler.incr("a")
        profiler.incr("a", 4)
        profiler.incr("b")
        assert profiler.get("a") == 5
        assert profiler.get("missing") == 0
        profiler.reset()
        assert profiler.get("a") == 0

    def test_timer_accumulates_wall_clock(self):
        profiler = Profiler()
        with profiler.timer("stage"):
            time.sleep(0.01)
        with profiler.timer("stage"):
            pass
        assert profiler.elapsed("stage") >= 0.01
        assert profiler.elapsed("other") == 0.0

    def test_timer_records_on_exception(self):
        profiler = Profiler()
        try:
            with profiler.timer("stage"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert profiler.elapsed("stage") > 0.0

    def test_snapshot_is_json_shaped(self):
        profiler = Profiler()
        profiler.incr("x")
        with profiler.timer("y"):
            pass
        snap = profiler.snapshot()
        assert snap["counters"] == {"x": 1}
        assert set(snap["timings_s"]) == {"y"}


class TestRuntimeWiring:
    def test_simulation_populates_hot_path_counters(self):
        PROFILER.reset()
        spec = MODEL_POOL["S"][0]
        tasks = [
            Task(task_id=i, model_key=spec.key, arrival_s=i * 1e-4)
            for i in range(6)
        ]
        system = build_system(
            "proposed", paper_cluster(), Catalog(VitalCompiler())
        )
        result = ClusterSimulator(system, "proposed").run(tasks)
        assert len(result.completed) == 6
        counters = PROFILER.snapshot()["counters"]
        assert counters["simulator.try_start_attempts"] >= 6
        assert counters["simulator.events"] > 0
        assert counters["controller.deploy_calls"] >= 1
        assert counters["controller.find_placement_calls"] >= 1
