"""Property-style invariants for the incremental allocator state.

The board free-count cache, the free-index heap, the controller's placement
index and the per-model deployment index are all maintained incrementally;
these tests hammer them with randomized allocate/deploy/release/evict/reset
sequences and assert they always equal a from-scratch recount.
"""

import random

import pytest

from repro.cluster.topology import paper_cluster
from repro.errors import AllocationError
from repro.runtime import Catalog, build_system
from repro.runtime.deployment import DeploymentState
from repro.vital import VitalCompiler
from repro.vital.device import XCVU37P
from repro.vital.virtual_block import PhysicalFPGA
from repro.workloads.deepbench import MODEL_POOL


def _assert_board_consistent(board: PhysicalFPGA) -> None:
    assert board.free_blocks == board.recount_free_blocks()
    assert board.used_blocks == len(board.blocks) - board.free_blocks
    owned = {
        block.owner for block in board.blocks if block.owner is not None
    }
    assert board.owners() == owned


class TestBoardCounterInvariants:
    def test_random_allocate_release_sequences(self):
        rng = random.Random(42)
        board = PhysicalFPGA("b0", XCVU37P)
        live_owners: list[str] = []
        next_owner = 0
        for _ in range(2000):
            action = rng.random()
            if action < 0.55 or not live_owners:
                count = rng.randint(1, 6)
                owner = f"d{next_owner}"
                try:
                    indices = board.allocate(owner, count)
                except AllocationError:
                    assert count > board.free_blocks
                else:
                    assert len(indices) == count
                    live_owners.append(owner)
                    next_owner += 1
            elif action < 0.95:
                owner = live_owners.pop(rng.randrange(len(live_owners)))
                assert board.release(owner) > 0
            else:
                board.reset()
                live_owners.clear()
            _assert_board_consistent(board)

    def test_release_unknown_owner_is_noop(self):
        board = PhysicalFPGA("b0", XCVU37P)
        board.allocate("a", 3)
        assert board.release("ghost") == 0
        _assert_board_consistent(board)

    def test_allocation_reuses_lowest_indices(self):
        """The heap hands out the lowest-numbered free blocks, exactly like
        the old first-free scan did."""
        board = PhysicalFPGA("b0", XCVU37P)
        assert board.allocate("a", 3) == [0, 1, 2]
        assert board.allocate("b", 2) == [3, 4]
        board.release("a")
        assert board.allocate("c", 2) == [0, 1]
        _assert_board_consistent(board)

    def test_subscriber_sees_every_change(self):
        board = PhysicalFPGA("b0", XCVU37P)
        deltas: list[tuple[int, int]] = []
        board.subscribe(lambda b, old: deltas.append((old, b.free_blocks)))
        board.allocate("a", 4)
        board.release("a")
        board.allocate("b", 1)
        board.reset()
        total = len(board.blocks)
        assert deltas == [
            (total, total - 4),
            (total - 4, total),
            (total, total - 1),
            (total - 1, total),
        ]


@pytest.fixture(scope="module")
def deployed_controller():
    """A controller with a built catalog over the paper cluster."""
    cluster = paper_cluster()
    system = build_system("proposed", cluster, Catalog(VitalCompiler()))
    return cluster, system.controller


class TestControllerIndexInvariants:
    def test_random_deploy_evict_release(self, deployed_controller):
        cluster, controller = deployed_controller
        rng = random.Random(7)
        model_keys = sorted(
            {spec.key for specs in MODEL_POOL.values() for spec in specs}
        )[:6]
        live = []
        now = 0.0
        for _ in range(300):
            now += 0.01
            action = rng.random()
            if action < 0.5:
                key = rng.choice(model_keys)
                try:
                    deployment, _ = controller.deploy(key, now=now)
                except AllocationError:
                    pass
                else:
                    live.append(deployment)
            elif live:
                deployment = live.pop(rng.randrange(len(live)))
                controller.evict(deployment)
            # Every cached structure equals a from-scratch recount.
            for board in cluster.boards.values():
                _assert_board_consistent(board)
            assert controller.index.check_consistent()
            by_model: dict[str, int] = {}
            for deployment in controller.deployments.values():
                by_model[deployment.model_key] = (
                    by_model.get(deployment.model_key, 0) + 1
                )
            for key in model_keys:
                assert controller.deployment_count(key) == by_model.get(key, 0)

    def test_deploy_evict_storm_full_recount(self):
        """A denser storm than the mixed walk above: bursts of deploys up
        to allocation failure, then bursts of evictions, with a *complete*
        from-scratch recount of every cached structure after each burst."""
        cluster = paper_cluster()
        system = build_system("proposed", cluster, Catalog(VitalCompiler()))
        controller = system.controller
        rng = random.Random(1234)
        model_keys = sorted(
            {spec.key for specs in MODEL_POOL.values() for spec in specs}
        )
        live = []
        now = 0.0
        for _burst in range(25):
            # Deploy burst: hammer until a random number of failures.
            failures_allowed = rng.randint(1, 3)
            while failures_allowed:
                now += 0.001
                try:
                    deployment, _ = controller.deploy(
                        rng.choice(model_keys), now=now
                    )
                except AllocationError:
                    failures_allowed -= 1
                else:
                    live.append(deployment)
            # Evict burst: drop a random fraction of what is resident.
            for _ in range(rng.randint(1, max(1, len(live) // 2))):
                if not live:
                    break
                controller.evict(live.pop(rng.randrange(len(live))))
            # Full recount of every incrementally-maintained structure.
            for board in cluster.boards.values():
                _assert_board_consistent(board)
            assert controller.index.check_consistent()
            used = sum(b.used_blocks for b in cluster.boards.values())
            accounted = sum(
                p.virtual_blocks
                for d in controller.deployments.values()
                for p in d.placements
            )
            assert used == accounted
            for key in model_keys:
                expected = sum(
                    1
                    for d in controller.deployments.values()
                    if d.model_key == key
                )
                assert controller.deployment_count(key) == expected
        assert live, "storm should leave residents behind"

    def test_migration_storm_keeps_indexes_consistent(self):
        """Random live migrations interleaved with deploys/evicts: the
        placement index and block ownership must survive moves too."""
        cluster = paper_cluster()
        catalog = Catalog(VitalCompiler())
        system = build_system("proposed", cluster, catalog, defrag=True)
        controller = system.controller
        engine = controller.migration
        rng = random.Random(99)
        keys = ["gru-h512-t1", "lstm-h256-t150", "lstm-h512-t25"]
        live = []
        now = 0.0
        migrated = 0
        for _ in range(200):
            now += 0.01
            action = rng.random()
            if action < 0.4:
                try:
                    deployment, _ = controller.deploy(rng.choice(keys), now=now)
                except AllocationError:
                    pass
                else:
                    live.append(deployment)
            elif action < 0.6 and live:
                controller.evict(live.pop(rng.randrange(len(live))))
            elif live:
                deployment = rng.choice(live)
                replica = rng.randrange(len(deployment.placements))
                candidates = [
                    board
                    for board in cluster.boards.values()
                    if board.model.name in deployment.plan.images
                    and board.fpga_id
                    not in {p.fpga_id for p in deployment.placements}
                    and board.free_blocks
                    >= deployment.plan.images[board.model.name].virtual_blocks
                ]
                if candidates:
                    engine.migrate(
                        deployment, {replica: rng.choice(candidates)}, now=now
                    )
                    migrated += 1
            for board in cluster.boards.values():
                _assert_board_consistent(board)
            assert controller.index.check_consistent()
            for deployment in controller.deployments.values():
                assert deployment.state is not DeploymentState.MIGRATING
                for placement in deployment.placements:
                    board = cluster.board(placement.fpga_id)
                    owned = board.owned_indices(deployment.deployment_id)
                    assert owned == placement.block_indices
                    assert len(owned) == placement.virtual_blocks
        assert migrated > 20, "storm should have exercised migration"

    def test_chaos_failure_repair_storm(self):
        """Random board failures and repairs interleaved with deploys,
        evicts and live migrations (recovery armed, synchronous mode): the
        cached allocator structures must equal a from-scratch recount after
        every step, no two deployments may ever own the same block, and no
        placement may land on an unhealthy board."""
        from repro.vital.virtual_block import BoardHealth

        cluster = paper_cluster()
        system = build_system(
            "proposed", cluster, Catalog(VitalCompiler()), recovery=True
        )
        controller = system.controller
        engine = controller.migration
        rng = random.Random(2024)
        keys = ["gru-h512-t1", "lstm-h256-t150", "lstm-h512-t25"]
        board_ids = sorted(cluster.boards)
        now = 0.0
        migrated = 0
        for _step in range(400):
            now += 0.005
            action = rng.random()
            if action < 0.35:
                try:
                    controller.deploy(rng.choice(keys), now=now)
                except AllocationError:
                    pass
            elif action < 0.45:
                idle = [
                    d for d in controller.deployments.values() if d.is_idle
                ]
                if idle:
                    controller.evict(rng.choice(idle))
            elif action < 0.60:
                idle = [
                    d for d in controller.deployments.values() if d.is_idle
                ]
                if idle:
                    deployment = rng.choice(idle)
                    replica = rng.randrange(len(deployment.placements))
                    occupied = {p.fpga_id for p in deployment.placements}
                    candidates = [
                        board
                        for board in cluster.boards.values()
                        if board.model.name in deployment.plan.images
                        and board.fpga_id not in occupied
                        and board.can_host(
                            deployment.plan.images[
                                board.model.name
                            ].virtual_blocks
                        )
                    ]
                    if candidates:
                        engine.migrate(
                            deployment,
                            {replica: rng.choice(candidates)},
                            now=now,
                        )
                        migrated += 1
            elif action < 0.70:
                board = cluster.board(rng.choice(board_ids))
                controller.on_board_degraded(board, now)
            elif action < 0.85:
                board = cluster.board(rng.choice(board_ids))
                controller.on_board_failure(board, now)
            else:
                board = cluster.board(rng.choice(board_ids))
                controller.on_board_repair(board, now)
            # Every cached structure equals a from-scratch recount, in
            # every health configuration.
            for board in cluster.boards.values():
                _assert_board_consistent(board)
            assert controller.index.check_consistent()
            # Never double-place: every block is owned by at most one
            # deployment, and every placement's record matches the board.
            claimed: dict = {}
            for deployment in controller.deployments.values():
                for placement in deployment.placements:
                    board = cluster.board(placement.fpga_id)
                    owned = board.owned_indices(deployment.deployment_id)
                    assert len(owned) == placement.virtual_blocks
                    for index in owned:
                        slot = (placement.fpga_id, index)
                        assert slot not in claimed, (
                            f"block {slot} owned by both {claimed[slot]} "
                            f"and {deployment.deployment_id}"
                        )
                        claimed[slot] = deployment.deployment_id
                    # Recovery must never have placed onto a board that
                    # was unhealthy at placement time and is FAILED now
                    # (a FAILED board's residents are recovered or gone).
                    assert board.health is not BoardHealth.FAILED
        stats = controller.stats
        assert stats.boards_failed > 20, "storm should have failed boards"
        assert stats.deployments_failed > 0
        assert stats.recoveries > 0, "storm should have exercised recovery"
        assert migrated > 5, "storm should have exercised migration"

    def test_index_tracks_direct_board_allocation(self, deployed_controller):
        """Tests (and tools) allocate on boards directly; the placement
        index must observe those too, not just controller-driven changes."""
        cluster, controller = deployed_controller
        board = cluster.board("vu37p-0")
        take = board.free_blocks
        if take:
            board.allocate("direct-blocker", take)
        assert controller.index.check_consistent()
        assert controller.index.max_free(board.model.name) == max(
            b.free_blocks
            for b in cluster.boards.values()
            if b.model.name == board.model.name
        )
        board.release("direct-blocker")
        assert controller.index.check_consistent()
