"""System-controller tests: the greedy policy, spatial sharing, eviction
and the restricted variant."""

import pytest

from repro.cluster import paper_cluster
from repro.errors import AllocationError
from repro.runtime import Catalog
from repro.runtime.controller import PlacementPolicy, SystemController
from repro.runtime.deployment import DeploymentState
from repro.vital import LowLevelController, VitalCompiler


@pytest.fixture(scope="module")
def shared_catalog():
    return Catalog(VitalCompiler())


def _controller(catalog, cluster=None, **kwargs):
    cluster = cluster or paper_cluster()
    controller = SystemController(
        cluster,
        catalog,
        LowLevelController(catalog.compiler.store),
        **kwargs,
    )
    return controller, cluster


class TestDeploy:
    def test_greedy_prefers_fewest_fpgas(self, shared_catalog):
        controller, _ = _controller(shared_catalog)
        deployment, _ = controller.deploy("gru-h512-t1")
        assert len(deployment.placements) == 1

    def test_two_fpga_model(self, shared_catalog):
        controller, _ = _controller(shared_catalog)
        deployment, _ = controller.deploy("gru-h2560-t375")
        assert len(deployment.placements) == 2
        assert {p.device_type for p in deployment.placements} == {"XCVU37P"}

    def test_reconfig_cost_charged(self, shared_catalog):
        controller, _ = _controller(shared_catalog)
        deployment, reconfig = controller.deploy("gru-h512-t1")
        blocks = sum(p.virtual_blocks for p in deployment.placements)
        assert reconfig > blocks * controller.reconfig_s_per_block * 0.99

    def test_blocks_actually_reserved(self, shared_catalog):
        controller, cluster = _controller(shared_catalog)
        free_before = sum(cluster.total_free_blocks().values())
        deployment, _ = controller.deploy("lstm-h256-t150")
        free_after = sum(cluster.total_free_blocks().values())
        used = sum(p.virtual_blocks for p in deployment.placements)
        assert free_before - free_after == used

    def test_spatial_sharing_multiple_models_one_board(self, shared_catalog):
        """The headline HS-abstraction property: small accelerators of
        different applications share one FPGA."""
        controller, cluster = _controller(shared_catalog)
        for key in ("gru-h512-t1", "lstm-h256-t150", "lstm-h512-t25"):
            controller.deploy(key)
        owners_per_board = [len(b.owners()) for b in cluster.boards.values()]
        assert max(owners_per_board) >= 2

    def test_service_time_positive_and_cached(self, shared_catalog):
        controller, _ = _controller(shared_catalog)
        deployment, _ = controller.deploy("gru-h1536-t375")
        assert deployment.service_s > 0

    def test_find_idle_deployment(self, shared_catalog):
        controller, _ = _controller(shared_catalog)
        deployment, _ = controller.deploy("gru-h512-t1", now=0.0)
        assert controller.find_idle_deployment("gru-h512-t1") is deployment
        deployment.acquire()
        assert controller.find_idle_deployment("gru-h512-t1") is None


class TestEviction:
    def test_eviction_requires_patience(self, shared_catalog):
        controller, _ = _controller(shared_catalog)
        # Fill the cluster with L deployments.
        first, _ = controller.deploy("gru-h2560-t375", now=0.0)
        second, _ = controller.deploy("gru-h2304-t250", now=0.0)
        with pytest.raises(AllocationError):
            controller.deploy("lstm-h1536-t50", now=0.0, waited_s=0.0)

    def test_eviction_after_patience(self, shared_catalog):
        controller, _ = _controller(shared_catalog)
        controller.deploy("gru-h2560-t375", now=0.0)
        controller.deploy("gru-h2304-t250", now=0.0)
        deployment, _ = controller.deploy(
            "lstm-h1536-t50", now=1.0, waited_s=1.0
        )
        assert deployment.model_key == "lstm-h1536-t50"
        assert controller.stats.deployments_evicted >= 1

    def test_busy_deployments_never_evicted(self, shared_catalog):
        controller, _ = _controller(shared_catalog)
        a, _ = controller.deploy("gru-h2560-t375", now=0.0)
        b, _ = controller.deploy("gru-h2304-t250", now=0.0)
        a.acquire()
        b.acquire()
        with pytest.raises(AllocationError):
            controller.deploy("lstm-h1536-t50", now=10.0, waited_s=10.0)
        assert a.state is DeploymentState.BUSY

    def test_explicit_evict_frees_blocks(self, shared_catalog):
        controller, cluster = _controller(shared_catalog)
        deployment, _ = controller.deploy("gru-h512-t1")
        free_before = sum(cluster.total_free_blocks().values())
        controller.evict(deployment)
        assert sum(cluster.total_free_blocks().values()) > free_before

    def test_evicting_busy_rejected(self, shared_catalog):
        controller, _ = _controller(shared_catalog)
        deployment, _ = controller.deploy("gru-h512-t1")
        deployment.acquire()
        with pytest.raises(AllocationError):
            controller.evict(deployment)


class TestRestrictedPolicy:
    def test_same_type_pairs_only(self, shared_catalog):
        controller, _ = _controller(shared_catalog, same_type_only=True)
        deployment, _ = controller.deploy("gru-h2304-t250")
        types = {p.device_type for p in deployment.placements}
        assert len(types) == 1

    def test_mixed_pair_used_when_same_type_impossible(self, shared_catalog):
        controller, cluster = _controller(shared_catalog)
        # Occupy two of the three V37s so no same-type pair remains.
        cluster.board("vu37p-0").allocate("blocker", 16)
        cluster.board("vu37p-1").allocate("blocker", 16)
        deployment, _ = controller.deploy("gru-h2304-t250")
        types = {p.device_type for p in deployment.placements}
        assert types == {"XCVU37P", "XCKU115"}

    def test_restricted_fails_where_mixed_would_work(self, shared_catalog):
        controller, cluster = _controller(shared_catalog, same_type_only=True)
        cluster.board("vu37p-0").allocate("blocker", 16)
        cluster.board("vu37p-1").allocate("blocker", 16)
        with pytest.raises(AllocationError):
            controller.deploy("gru-h2304-t250")


class TestPlacementPolicies:
    def test_best_fit_packs(self, shared_catalog):
        controller, cluster = _controller(
            shared_catalog, placement=PlacementPolicy.BEST_FIT
        )
        controller.deploy("gru-h512-t1")
        controller.deploy("gru-h512-t1")
        used_boards = {
            b.fpga_id for b in cluster.boards.values() if b.used_blocks
        }
        assert len(used_boards) == 1  # both packed onto the same board

    def test_worst_fit_spreads(self, shared_catalog):
        controller, cluster = _controller(
            shared_catalog, placement=PlacementPolicy.WORST_FIT
        )
        controller.deploy("gru-h512-t1")
        controller.deploy("gru-h512-t1")
        used_boards = {
            b.fpga_id for b in cluster.boards.values() if b.used_blocks
        }
        assert len(used_boards) == 2


class TestPlanOrder:
    def test_widest_first_uses_more_fpgas(self, shared_catalog):
        from repro.runtime.controller import PlanOrder

        greedy, _ = _controller(shared_catalog)
        widest, _ = _controller(
            shared_catalog, plan_order=PlanOrder.WIDEST_FIRST
        )
        few, _ = greedy.deploy("gru-h1536-t375")
        many, _ = widest.deploy("gru-h1536-t375")
        assert len(few.placements) == 1
        assert len(many.placements) >= 2

    def test_default_is_fewest(self, shared_catalog):
        from repro.runtime.controller import PlanOrder

        controller, _ = _controller(shared_catalog)
        assert controller.plan_order is PlanOrder.FEWEST_FPGAS
