"""Tests for hierarchy traversal, basic-module detection and resource
estimation — the substrate of the decomposer's step 1."""

import pytest

from repro.resources import ResourceVector
from repro.rtl import (
    basic_module_instances,
    design_resources,
    instance_resources,
    is_basic_module,
    iter_hierarchy,
)
from repro.rtl.builder import DesignBuilder
from repro.rtl.hierarchy import module_self_resources
from repro.rtl.primitives import cell_cost


class TestBasicModuleDetection:
    def test_leaf_with_primitives_is_basic(self, mini_design):
        assert is_basic_module(mini_design, "stage_a")

    def test_module_with_submodules_is_not_basic(self, mini_design):
        assert not is_basic_module(mini_design, "lane")
        assert not is_basic_module(mini_design, "top")

    def test_empty_module_is_basic(self):
        db = DesignBuilder("d")
        db.module("empty").build()
        design = db.top("empty").build()
        assert is_basic_module(design, "empty")


class TestIterHierarchy:
    def test_yields_root_first(self, mini_design):
        entries = list(iter_hierarchy(mini_design))
        assert entries[0] == ("", "top", None)

    def test_paths_are_hierarchical(self, mini_design):
        paths = {path for path, _, _ in iter_hierarchy(mini_design)}
        assert "lane0" in paths
        assert "lane0/sa" in paths
        assert "lane3/sc" in paths

    def test_primitives_not_traversed(self, mini_design):
        names = {name for _, name, _ in iter_hierarchy(mini_design)}
        assert "DFF" not in names and "BFP_MAC" not in names


class TestBasicInstances:
    def test_counts(self, mini_design):
        instances = basic_module_instances(mini_design)
        # decoder + 4 lanes x 3 stages
        assert len(instances) == 13

    def test_connectivity_lifted_to_shared_keys(self, mini_design):
        instances = basic_module_instances(mini_design)
        by_path = {inst.path: inst for inst in instances}
        # stage_a output and stage_b input of the same lane share a net key
        assert (
            by_path["lane0/sa"].outputs["mid"] == by_path["lane0/sb"].inputs["mid"]
        )
        # different lanes never share their internal nets
        assert (
            by_path["lane0/sa"].outputs["mid"]
            != by_path["lane1/sa"].outputs["mid"]
        )
        # the broadcast input is shared across lanes
        assert (
            by_path["lane0/sa"].inputs["vin"] == by_path["lane3/sa"].inputs["vin"]
        )

    def test_basic_root_returns_single_instance(self):
        db = DesignBuilder("d")
        m = db.module("only")
        m.inputs("a").outputs("y")
        m.instance("g", "NOT", a="a", y="y")
        m.build()
        design = db.top("only").build()
        instances = basic_module_instances(design)
        assert len(instances) == 1
        assert instances[0].path == ""

    def test_assign_aliases_merge_net_keys(self):
        db = DesignBuilder("d")
        m = db.module("leafm")
        m.inputs("i").outputs("o")
        m.instance("g", "NOT", a="i", y="o")
        m.build()
        m = db.module("top")
        m.inputs("x").outputs(("z", 1))
        m.nets("a", "b")
        m.assign("a", "b")
        m.instance("u0", "leafm", i="x", o="b")
        m.instance("u1", "leafm", i="a", o="z")
        m.build()
        design = db.top("top").build()
        instances = basic_module_instances(design)
        by_path = {inst.path: inst for inst in instances}
        assert by_path["u0"].outputs["o"] == by_path["u1"].inputs["i"]

    def test_leaf_name(self, mini_design):
        instances = basic_module_instances(mini_design)
        by_path = {inst.path: inst for inst in instances}
        assert by_path["lane2/sb"].leaf_name == "sb"


class TestResourceEstimation:
    def test_primitive_costs_sum(self, mini_design):
        stage_a = mini_design.require_module("stage_a")
        expected = cell_cost("BFP_MAC") * 2
        assert module_self_resources(stage_a) == expected

    def test_declared_resources_override(self):
        db = DesignBuilder("d")
        declared = ResourceVector(luts=1234.0)
        m = db.module("macro")
        m.attribute("resources", declared)
        m.instance("g", "DFF")  # ignored by the override
        m.build()
        design = db.top("macro").build()
        assert instance_resources(design, "macro") == declared

    def test_declared_resources_accept_dict(self):
        db = DesignBuilder("d")
        m = db.module("macro")
        m.attribute("resources", {"luts": 10.0, "dsps": 2.0})
        m.build()
        design = db.top("macro").build()
        assert instance_resources(design, "macro").dsps == 2.0

    def test_hierarchical_sum(self, mini_design):
        lane = instance_resources(mini_design, "lane")
        parts = (
            instance_resources(mini_design, "stage_a")
            + instance_resources(mini_design, "stage_b")
            + instance_resources(mini_design, "stage_c")
        )
        assert lane == parts

    def test_design_resources_scale_with_instances(self, mini_design):
        total = design_resources(mini_design)
        lane = instance_resources(mini_design, "lane")
        decoder = instance_resources(mini_design, "decoder")
        expected = decoder + lane * 4
        assert list(total) == pytest.approx(list(expected))

    def test_primitive_as_instance(self, mini_design):
        assert instance_resources(mini_design, "DFF") == cell_cost("DFF")
