"""Performance-model tests: instance sizing, single-FPGA latency, the
communication/computation overlap model, and throughput helpers."""

import pytest

from repro.accel import BW_V37, CycleModel
from repro.accel.codegen import build_scaleout_programs
from repro.accel.timing import VirtualizationContext
from repro.cluster.network import RingNetwork
from repro.errors import ReproError
from repro.perf import (
    demand_sized_instance,
    overlap_window_seconds,
    scaleout_latency,
    single_fpga_latency,
    speedup,
)
from repro.perf.latency import MIN_TILES, weight_load_seconds
from repro.perf.throughput import arithmetic_mean, geometric_mean
from repro.units import mhz, us
from repro.workloads.deepbench import ModelSpec


class TestInstanceSizing:
    def test_small_model_small_instance(self):
        spec = ModelSpec("gru", 512, 1)
        choice = demand_sized_instance(spec.weight_bits(7), "XCVU37P")
        assert MIN_TILES <= choice.config.tiles < 21
        assert choice.resident_fraction == 1.0

    def test_large_model_clamps_at_device(self):
        spec = ModelSpec("gru", 2560, 1)
        choice = demand_sized_instance(spec.weight_bits(7), "XCVU37P")
        assert choice.config.tiles == 21
        assert choice.resident_fraction < 1.0

    def test_replicas_halve_demand(self):
        spec = ModelSpec("gru", 1536, 1)
        whole = demand_sized_instance(spec.weight_bits(7), "XCVU37P", 1)
        half = demand_sized_instance(spec.weight_bits(7), "XCVU37P", 2)
        assert half.config.tiles <= whole.config.tiles
        assert half.resident_fraction >= whole.resident_fraction

    def test_small_instances_keep_mfu_width(self):
        choice = demand_sized_instance(ModelSpec("lstm", 256, 1).weight_bits(7),
                                       "XCVU37P")
        assert choice.config.mfu_total_lanes >= 32

    def test_unknown_device(self):
        with pytest.raises(ReproError):
            demand_sized_instance(1000, "XC7Z020")

    def test_weight_load_seconds_scales(self):
        assert weight_load_seconds(10_000_000) > weight_load_seconds(1_000)


class TestSingleFpgaLatency:
    def test_frequency_override(self):
        program = ModelSpec("gru", 512, 10).program()
        fast = single_fpga_latency(program, BW_V37, frequency_hz=mhz(400))
        slow = single_fpga_latency(program, BW_V37, frequency_hz=mhz(200))
        assert slow.seconds > fast.seconds

    def test_virtualization_adds_cost(self):
        program = ModelSpec("gru", 512, 10).program()
        base = single_fpga_latency(program, BW_V37)
        virt = single_fpga_latency(
            program, BW_V37, virtualization=VirtualizationContext(10)
        )
        assert virt.seconds > base.seconds


class TestOverlapModel:
    def _setup(self, kind="gru", hidden=1024, timesteps=50, reorder=True):
        spec = ModelSpec(kind, hidden, timesteps)
        programs = build_scaleout_programs(
            kind, spec.metadata_weights(), timesteps, 2, reorder=reorder
        )
        choice = demand_sized_instance(spec.weight_bits(7), "XCVU37P", 2)
        model = CycleModel(choice.config)
        network = RingNetwork(["f0", "f1"])
        return programs[0], model, network

    def test_window_positive_after_reorder(self):
        program, model, _ = self._setup()
        assert overlap_window_seconds(program, model) > 0

    def test_window_zero_without_reorder(self):
        program, model, _ = self._setup(reorder=False)
        assert overlap_window_seconds(program, model) == 0.0

    def test_window_zero_without_exchange(self):
        spec = ModelSpec("gru", 512, 5)
        program = spec.program()
        assert overlap_window_seconds(program, CycleModel(BW_V37)) == 0.0

    def test_fully_hidden_at_low_latency(self):
        program, model, network = self._setup()
        report = scaleout_latency(program, model, network, ["f0", "f1"])
        assert report.fully_hidden

    def test_stall_appears_beyond_window(self):
        program, model, network = self._setup()
        report = scaleout_latency(
            program, model, network, ["f0", "f1"], added_latency_s=us(5.0)
        )
        assert not report.fully_hidden
        assert report.total_s > report.compute_s

    def test_latency_monotone_in_added_latency(self):
        program, model, network = self._setup()
        values = [
            scaleout_latency(
                program, model, network, ["f0", "f1"], added_latency_s=us(x)
            ).total_s
            for x in (0.0, 0.5, 1.0, 2.0, 4.0)
        ]
        assert values == sorted(values)

    def test_stall_charged_per_timestep(self):
        program, model, network = self._setup(timesteps=50)
        report = scaleout_latency(
            program, model, network, ["f0", "f1"], added_latency_s=us(10.0)
        )
        expected = report.compute_s + 50 * report.stall_per_step_s
        assert report.total_s == pytest.approx(expected)

    def test_non_scaleout_program_rejected(self):
        program = ModelSpec("gru", 512, 5).program()
        with pytest.raises(ReproError, match="scale-out"):
            scaleout_latency(
                program, CycleModel(BW_V37), RingNetwork(["a", "b"]), ["a", "b"]
            )

    def test_reordering_buys_latency_tolerance(self):
        """The Fig. 11 ablation: without the reordering tool, any network
        latency is exposed."""
        added = us(0.2)
        with_reorder = self._setup(reorder=True)
        without = self._setup(reorder=False)
        stall_with = scaleout_latency(
            with_reorder[0], with_reorder[1], with_reorder[2], ["f0", "f1"],
            added_latency_s=added,
        ).stall_per_step_s
        stall_without = scaleout_latency(
            without[0], without[1], without[2], ["f0", "f1"],
            added_latency_s=added,
        ).stall_per_step_s
        assert stall_with < stall_without


class TestThroughputHelpers:
    def test_speedup(self):
        assert speedup(10.0, 4.0) == pytest.approx(2.5)

    def test_speedup_zero_baseline(self):
        with pytest.raises(ReproError):
            speedup(1.0, 0.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            geometric_mean([1.0, 0.0])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_means_reject_empty(self):
        with pytest.raises(ReproError):
            arithmetic_mean([])
        with pytest.raises(ReproError):
            geometric_mean([])
