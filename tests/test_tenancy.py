"""Multi-tenant fairness layer tests.

Covers tenant/policy parameter validation, the quota guard's
zero-violation contract (declines at the allocation point, ledger peaks
never exceed a quota), strict-priority and weighted fair-share dispatch,
checkpoint + requeue preemption (occupancy never lost, preempted
best-effort work always completes, resume-credit arithmetic), the
serving-frontend composition (including the requeue path), and a
preemption storm on a 64-board pod cluster mirroring
:mod:`tests.test_pods`.
"""

import math

import pytest

from repro.cluster import ClusterSimulator, Task, scaled_cluster
from repro.cluster.topology import paper_cluster
from repro.errors import ReproError
from repro.runtime import Catalog, build_system
from repro.serving import ServingFrontend, ServingParameters
from repro.tenancy import TenancyParameters, TenantParameters, TenantScheduler
from repro.units import ms
from repro.vital import VitalCompiler
from repro.workloads import arrival_process


@pytest.fixture(scope="module")
def shared_catalog():
    return Catalog(VitalCompiler())


def _proposed(cluster, catalog, **kwargs):
    return build_system("proposed", cluster, catalog, **kwargs)


def _stream(tenant, model_keys, count, rate, seed, id_base=0):
    arrivals = arrival_process("poisson")(count, rate, seed=seed)
    return [
        Task(
            task_id=id_base + index,
            model_key=model_keys[index % len(model_keys)],
            arrival_s=arrival_s,
            size_class="S",
            tenant=tenant,
        )
        for index, arrival_s in enumerate(arrivals)
    ]


class TestParameterValidation:
    def test_tenant_defaults_valid(self):
        tenant = TenantParameters(name="acme")
        assert tenant.priority == 0
        assert tenant.weight == 1.0
        assert tenant.block_quota is None
        assert tenant.preemptible

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": 7},
            {"name": " padded"},
            {"name": "two\nlines"},
            {"name": "t", "weight": 0.0},
            {"name": "t", "weight": -1.0},
            {"name": "t", "block_quota": 0},
            {"name": "t", "replica_quota": 0},
            {"name": "t", "queue_quota": 0},
        ],
    )
    def test_bad_tenant_parameters_raise(self, kwargs):
        with pytest.raises(ReproError):
            TenantParameters(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drain_s": -1e-6},
            {"max_victims": 0},
            {"cooldown_s": -1.0},
        ],
    )
    def test_bad_tenancy_parameters_raise(self, kwargs):
        with pytest.raises(ReproError):
            TenancyParameters(**kwargs)

    def test_duplicate_tenants_rejected(self, shared_catalog):
        system = _proposed(paper_cluster(), shared_catalog)
        with pytest.raises(ReproError, match="duplicate"):
            TenantScheduler(
                system,
                [TenantParameters(name="a"), TenantParameters(name="a")],
            )

    def test_non_tenant_parameters_rejected(self, shared_catalog):
        system = _proposed(paper_cluster(), shared_catalog)
        with pytest.raises(ReproError, match="TenantParameters"):
            TenantScheduler(system, ["acme"])


class TestDispatchOrdering:
    def _scheduler(self, catalog, tenants):
        system = _proposed(paper_cluster(), catalog)
        return TenantScheduler(system, tenants)

    def test_priority_dominates_key(self, shared_catalog):
        scheduler = self._scheduler(
            shared_catalog,
            [
                TenantParameters(name="hi", priority=2),
                TenantParameters(name="lo", priority=0),
            ],
        )
        # The low-priority tenant arrived earlier and has less virtual
        # time, yet strict priority still orders the high class first.
        scheduler.tenant("lo").vtime = 0.0
        scheduler.tenant("hi").vtime = 99.0
        late = Task(task_id=1, model_key="m", arrival_s=5.0, tenant="hi")
        early = Task(task_id=0, model_key="m", arrival_s=0.0, tenant="lo")
        assert scheduler.dispatch_key(late) < scheduler.dispatch_key(early)

    def test_vtime_breaks_ties_within_class(self, shared_catalog):
        scheduler = self._scheduler(
            shared_catalog,
            [
                TenantParameters(name="a", weight=2.0),
                TenantParameters(name="b", weight=1.0),
            ],
        )
        scheduler.tenant("a").vtime = 1.0
        scheduler.tenant("b").vtime = 2.0
        task_a = Task(task_id=1, model_key="m", arrival_s=9.0, tenant="a")
        task_b = Task(task_id=0, model_key="m", arrival_s=0.0, tenant="b")
        assert scheduler.dispatch_key(task_a) < scheduler.dispatch_key(task_b)

    def test_activation_floor_normalises_idle_vtime(self, shared_catalog):
        scheduler = self._scheduler(
            shared_catalog,
            [TenantParameters(name="a"), TenantParameters(name="b")],
        )
        busy = scheduler.tenant("a")
        busy.vtime = 10.0
        busy.pending = 1
        idle = scheduler.tenant("b")
        idle.vtime = 0.0
        task = Task(task_id=0, model_key="m", arrival_s=0.0, tenant="b")
        assert scheduler.admit(task, 0.0)
        # The returning tenant re-enters at the active minimum, so it
        # cannot replay its idle period as accumulated credit.
        assert idle.vtime == 10.0

    def test_weighted_share_under_contention(self, shared_catalog):
        """Two same-priority tenants with identical saturating streams:
        the weight-2 tenant's mean latency must beat the weight-1
        tenant's (it receives twice the share, so it drains faster)."""
        cluster = paper_cluster()
        system = _proposed(cluster, shared_catalog)
        scheduler = TenantScheduler(
            system,
            [
                TenantParameters(name="heavy", weight=2.0),
                TenantParameters(name="light", weight=1.0),
            ],
        )
        tasks = sorted(
            _stream("heavy", ["gru-h512-t1"], 40, 4000.0, seed=5)
            + _stream("light", ["gru-h512-t1"], 40, 4000.0, seed=5,
                      id_base=1000),
            key=lambda task: (task.arrival_s, task.task_id),
        )
        result = ClusterSimulator(scheduler, "wfq").run(tasks)
        assert len(result.completed) == 80
        heavy = scheduler.tenant("heavy")
        light = scheduler.tenant("light")
        mean_heavy = sum(heavy.latencies_s) / len(heavy.latencies_s)
        mean_light = sum(light.latencies_s) / len(light.latencies_s)
        assert mean_heavy < mean_light

    def test_strict_priority_under_contention(self, shared_catalog):
        """Identical streams, one tenant a class above: the premium
        tenant's mean latency must beat the best-effort tenant's."""
        cluster = paper_cluster()
        system = _proposed(cluster, shared_catalog)
        scheduler = TenantScheduler(
            system,
            [
                TenantParameters(name="prem", priority=1),
                TenantParameters(name="be", priority=0),
            ],
        )
        tasks = sorted(
            _stream("prem", ["gru-h512-t1"], 40, 4000.0, seed=9)
            + _stream("be", ["gru-h512-t1"], 40, 4000.0, seed=9,
                      id_base=1000),
            key=lambda task: (task.arrival_s, task.task_id),
        )
        result = ClusterSimulator(scheduler, "prio").run(tasks)
        assert len(result.completed) == 80
        prem = scheduler.tenant("prem")
        be = scheduler.tenant("be")
        assert (
            sum(prem.latencies_s) / len(prem.latencies_s)
            < sum(be.latencies_s) / len(be.latencies_s)
        )


class TestQuotaEnforcement:
    def test_guard_declines_over_quota_plan(self, shared_catalog):
        system = _proposed(paper_cluster(), shared_catalog)
        scheduler = TenantScheduler(
            system, [TenantParameters(name="capped", block_quota=4)]
        )
        guard = scheduler._guard_for(scheduler.tenant("capped"))
        entry = system.controller.catalog.entry_by_key("gru-h512-t1")
        plans = sorted(
            entry.sorted_plans(), key=system.controller.plan_footprint
        )
        small = plans[0]
        if system.controller.plan_footprint(small) <= 4:
            assert guard(small)
        big = plans[-1]
        if system.controller.plan_footprint(big) > 4:
            assert not guard(big)

    def test_no_quota_means_no_guard(self, shared_catalog):
        system = _proposed(paper_cluster(), shared_catalog)
        scheduler = TenantScheduler(system, [TenantParameters(name="free")])
        assert scheduler._guard_for(scheduler.tenant("free")) is None

    def test_ledger_peak_never_exceeds_quota(self, shared_catalog):
        """End to end: a tightly capped tenant under backlog is declined
        at the allocation point — the ledger's peak resident blocks stay
        at or under the quota, and the declines are quota rejections,
        not placement failures."""
        cluster = paper_cluster()
        system = _proposed(cluster, shared_catalog)
        quota = 8
        scheduler = TenantScheduler(
            system,
            [TenantParameters(name="capped", block_quota=quota)],
        )
        tasks = _stream("capped", ["gru-h512-t1", "lstm-h256-t150"], 60,
                        20000.0, seed=3)
        result = ClusterSimulator(scheduler, "quota").run(tasks)
        assert len(result.completed) == 60
        assert scheduler.quota_violations() == {}
        assert scheduler.ledger.peak_open_blocks.get("capped", 0) <= quota
        assert system.controller.stats.quota_rejections > 0

    def test_queue_quota_sheds_at_admission(self, shared_catalog):
        system = _proposed(paper_cluster(), shared_catalog)
        scheduler = TenantScheduler(
            system, [TenantParameters(name="q", queue_quota=2)]
        )
        tasks = [
            Task(task_id=i, model_key="gru-h512-t1", arrival_s=0.0,
                 tenant="q")
            for i in range(5)
        ]
        admitted = [scheduler.admit(task, 0.0) for task in tasks]
        assert admitted == [True, True, False, False, False]
        assert scheduler.stats.quota_sheds == 3
        assert scheduler.tenant("q").shed == 3

    def test_quota_decline_hints_infinite_retry(self, shared_catalog):
        system = _proposed(paper_cluster(), shared_catalog)
        scheduler = TenantScheduler(system, [TenantParameters(name="t")])
        task = Task(task_id=7, model_key="gru-h512-t1", arrival_s=0.0,
                    tenant="t")
        scheduler._decline_reason[7] = "quota"
        assert scheduler.retry_hint(task, 1.0) == math.inf
        scheduler._decline_reason[7] = "preempt"
        assert scheduler.retry_hint(task, 1.0) == math.inf


def _overload_setup(catalog, board_count=8, pod_size=4, task_count=120,
                    rate=12800.0, seed=17):
    """Mixed premium/best-effort overload on a pod-sharded cluster, with
    the best-effort stream sized to saturate so the premium tenant must
    preempt its way in.  Returns (scheduler, system, tasks)."""
    cluster = scaled_cluster(board_count, pod_size=pod_size)
    system = build_system("proposed", cluster, catalog)
    total_blocks = sum(len(b.blocks) for b in cluster.boards.values())
    tenants = [
        TenantParameters(
            name="premium", priority=1, weight=2.0,
            block_quota=max(1, int(total_blocks * 0.3)), preemptible=False,
        ),
        TenantParameters(
            name="besteffort", priority=0, weight=1.0,
            block_quota=max(1, int(total_blocks * 0.8)), preemptible=True,
        ),
    ]
    scheduler = TenantScheduler(system, tenants, TenancyParameters())
    premium_count = task_count // 4
    tasks = sorted(
        _stream("premium", ["gru-h512-t1"], premium_count, rate * 0.25,
                seed=seed)
        + _stream(
            "besteffort", ["lstm-h256-t150", "lstm-h512-t25"],
            task_count - premium_count, rate * 0.75, seed=seed + 1,
            id_base=10_000,
        ),
        key=lambda task: (task.arrival_s, task.task_id),
    )
    return scheduler, system, tasks


class TestPreemption:
    def test_checkpoint_requeue_never_loses_occupancy(self, shared_catalog):
        """After an overload run with real preemption sweeps, every
        board's free-block count equals a from-scratch recount, the
        placement and residency indexes are consistent, and the ledger
        holds no still-open intervals once the queues drain."""
        scheduler, system, tasks = _overload_setup(shared_catalog)
        result = ClusterSimulator(scheduler, "preempt").run(tasks)
        assert scheduler.stats.preemption_sweeps > 0
        assert len(result.completed) == len(tasks)
        controller = system.controller
        assert controller.index.check_consistent()
        assert controller.check_residents_consistent()
        for board in system.cluster.boards.values():
            assert board.free_blocks == board.recount_free_blocks()

    def test_preempted_best_effort_tasks_complete(self, shared_catalog):
        """Checkpoint + requeue loses the round trip, never the work:
        every distinct preempted task runs to completion."""
        scheduler, _, tasks = _overload_setup(shared_catalog)
        result = ClusterSimulator(scheduler, "recover").run(tasks)
        stats = scheduler.stats
        assert stats.tasks_preempted > 0
        assert stats.preempted_completed == stats.preempted_distinct
        assert len(result.completed) == len(tasks)
        assert scheduler.tenant("besteffort").preempted > 0
        # Checkpoint and restore streams were actually charged.
        assert stats.checkpoint_s > 0.0
        assert stats.restore_s > 0.0

    def test_quota_violations_empty_under_preemption(self, shared_catalog):
        scheduler, _, tasks = _overload_setup(shared_catalog)
        ClusterSimulator(scheduler, "violations").run(tasks)
        assert scheduler.quota_violations() == {}

    def test_preemption_disabled_means_no_sweeps(self, shared_catalog):
        scheduler, _, tasks = _overload_setup(shared_catalog)
        scheduler.params = TenancyParameters(preemption_enabled=False)
        result = ClusterSimulator(scheduler, "disabled").run(tasks)
        assert scheduler.stats.preemption_sweeps == 0
        assert scheduler.stats.tasks_preempted == 0
        assert len(result.completed) == len(tasks)

    def test_non_preemptible_tenant_is_never_victimised(self, shared_catalog):
        """Flip the bench roles: the low-priority tenant is
        non-preemptible, so the starved premium tenant finds no victims
        and simply waits."""
        cluster = scaled_cluster(8, pod_size=4)
        system = build_system("proposed", cluster, shared_catalog)
        scheduler = TenantScheduler(
            system,
            [
                TenantParameters(name="premium", priority=1,
                                 preemptible=False),
                TenantParameters(name="besteffort", priority=0,
                                 preemptible=False),
            ],
        )
        _, _, tasks = _overload_setup(shared_catalog)
        result = ClusterSimulator(scheduler, "novictims").run(tasks)
        assert scheduler.stats.deployments_preempted == 0
        assert scheduler.tenant("besteffort").preempted == 0
        assert len(result.completed) == len(tasks)

    def test_resume_credit_charges_restore_plus_remaining(
        self, shared_catalog
    ):
        """A preempted task's restart on a warm deployment is charged
        exactly the checkpoint-restore stream plus its remaining
        service — not a full rerun."""
        cluster = paper_cluster()
        system = _proposed(cluster, shared_catalog)
        scheduler = TenantScheduler(system, [TenantParameters(name="t")])
        first = Task(task_id=0, model_key="gru-h512-t1", arrival_s=0.0,
                     tenant="t")
        scheduler.admit(first, 0.0)
        service = scheduler.try_start(first, 0.0)
        assert service is not None
        scheduler.on_finish(first, service)
        # A warm idle deployment now exists: a fresh start pays only the
        # model's service time.
        second = Task(task_id=1, model_key="gru-h512-t1", arrival_s=0.0,
                      tenant="t")
        scheduler.admit(second, 0.0)
        remaining, restore = 0.5, 0.125
        scheduler._resume_credit[1] = (remaining, restore)
        scheduler._preempted_ever.add(1)
        charged = scheduler.try_start(second, 0.0)
        assert charged == pytest.approx(remaining + restore)
        assert scheduler.stats.restore_s == pytest.approx(restore)

    def test_checkpoint_cost_uses_state_size_over_host_link(
        self, shared_catalog
    ):
        system = _proposed(paper_cluster(), shared_catalog)
        scheduler = TenantScheduler(system, [TenantParameters(name="t")])
        deployment, _ = system.controller.deploy("gru-h512-t1")
        teardown_s, restore_s = scheduler._checkpoint_cost(deployment)
        engine = system.controller.migration
        state_bytes = sum(
            engine.state_bytes(deployment, i)
            for i in range(len(deployment.placements))
        )
        link = system.cluster.host_link
        stream = link.latency_s + state_bytes * 8.0 / link.bandwidth_bps
        assert restore_s == pytest.approx(stream)
        assert teardown_s == pytest.approx(scheduler.params.drain_s + stream)

    def test_cooldown_spaces_sweeps(self, shared_catalog):
        system = _proposed(paper_cluster(), shared_catalog)
        scheduler = TenantScheduler(
            system,
            [TenantParameters(name="hi", priority=1)],
            TenancyParameters(cooldown_s=ms(5.0)),
        )
        scheduler._preempt_gate_s = 1.0
        task = Task(task_id=0, model_key="gru-h512-t1", arrival_s=0.0,
                    tenant="hi")
        state = scheduler.tenant("hi")
        # Inside the cooldown window no sweep may start, whatever the
        # cluster looks like.
        assert not scheduler._maybe_preempt(task, state, 0.9999)


class TestFrontendComposition:
    def _frontend_stack(self, catalog, tenants, board_count=8):
        cluster = scaled_cluster(board_count, pod_size=4)
        system = build_system("proposed", cluster, catalog)
        frontend = ServingFrontend(
            system,
            ServingParameters(
                max_queue_depth=64,
                default_deadline_s=5.0,
                breaker_enabled=False,
            ),
        )
        scheduler = TenantScheduler(frontend, tenants)
        return scheduler, frontend, system

    def test_layer_exposes_wrapped_system(self, shared_catalog):
        scheduler, frontend, system = self._frontend_stack(
            shared_catalog, [TenantParameters(name="t")]
        )
        assert scheduler.inner is frontend
        assert scheduler.system is system
        assert scheduler.controller is system.controller

    def test_requeue_restores_queue_and_tenant_depth(self, shared_catalog):
        scheduler, frontend, _ = self._frontend_stack(
            shared_catalog, [TenantParameters(name="t")]
        )
        task = Task(task_id=0, model_key="gru-h512-t1", arrival_s=0.0,
                    tenant="t")
        assert scheduler.admit(task, 0.0)
        assert frontend.queue_depth_by_tenant() == {"t": 1}
        service = frontend.try_start(task, 0.0)
        assert service is not None
        assert frontend.queue_depth_by_tenant() == {}
        frontend.requeue(task, 0.0)
        assert frontend.queue_depth_by_tenant() == {"t": 1}
        record = frontend._records[0]
        assert not record.started
        assert record.board_ids == []

    def test_requeue_without_record_is_a_noop(self, shared_catalog):
        _, frontend, _ = self._frontend_stack(
            shared_catalog, [TenantParameters(name="t")]
        )
        stranger = Task(task_id=99, model_key="gru-h512-t1", arrival_s=0.0)
        frontend.requeue(stranger, 0.0)
        assert frontend.queue_depth_by_tenant() == {}

    def test_overload_run_through_frontend(self, shared_catalog):
        """The full stack — TenantScheduler over ServingFrontend over the
        system — survives a mixed overload run with preemption, and the
        frontend's accounting covers every admitted request."""
        scheduler, frontend, system = self._frontend_stack(
            shared_catalog,
            [
                TenantParameters(name="premium", priority=1, weight=2.0,
                                 preemptible=False),
                TenantParameters(name="besteffort", priority=0,
                                 preemptible=True),
            ],
        )
        tasks = sorted(
            _stream("premium", ["gru-h512-t1"], 30, 3200.0, seed=21)
            + _stream(
                "besteffort", ["lstm-h256-t150", "lstm-h512-t25"], 90,
                9600.0, seed=22, id_base=10_000,
            ),
            key=lambda task: (task.arrival_s, task.task_id),
        )
        result = ClusterSimulator(scheduler, "stack").run(tasks)
        stats = frontend.stats
        assert stats.admitted == stats.offered - stats.shed
        assert (
            stats.completed + stats.expired + stats.abandoned
            <= stats.admitted
        )
        assert len(result.completed) == stats.completed
        controller = system.controller
        assert controller.index.check_consistent()
        assert controller.check_residents_consistent()
        for board in system.cluster.boards.values():
            assert board.free_blocks == board.recount_free_blocks()


class TestLedgerTenantAxis:
    def test_peaks_and_open_usage_per_tenant(self, shared_catalog):
        system = _proposed(paper_cluster(), shared_catalog)
        scheduler = TenantScheduler(
            system,
            [TenantParameters(name="a"), TenantParameters(name="b")],
        )
        ledger = scheduler.ledger
        controller = system.controller
        controller.tenant_context = "a"
        try:
            first, _ = controller.deploy("gru-h512-t1")
        finally:
            controller.tenant_context = ""
        # The ledger books the plan's nominal footprint (what the quota
        # guard charges), not the per-device placement blocks.
        blocks_a = controller.plan_footprint(first.plan)
        assert ledger.open_blocks("a") == blocks_a
        assert ledger.open_blocks("b") == 0
        assert ledger.peak_open_blocks["a"] == blocks_a
        controller.discard(first)
        assert ledger.open_blocks("a") == 0
        # The peak survives the discard: it is the quota audit trail.
        assert ledger.peak_open_blocks["a"] == blocks_a

    def test_report_reads_ledger_peaks(self, shared_catalog):
        system = _proposed(paper_cluster(), shared_catalog)
        scheduler = TenantScheduler(
            system, [TenantParameters(name="a", block_quota=50)]
        )
        controller = system.controller
        controller.tenant_context = "a"
        try:
            controller.deploy("gru-h512-t1")
        finally:
            controller.tenant_context = ""
        report = scheduler.tenant_report()
        assert report["a"]["peak_open_blocks"] == (
            scheduler.ledger.peak_open_blocks["a"]
        )
        assert scheduler.quota_violations() == {}


class TestPreemptionStorm:
    """Chaos: three tenant classes hammering a 64-board pod cluster at
    sustained overload, driving repeated preemption sweeps — mirrors the
    pod chaos storm in :mod:`tests.test_pods` with preemption as the
    churn source instead of board failures."""

    def _storm(self, catalog, board_count, pod_size, task_count, rate,
               seed):
        cluster = scaled_cluster(board_count, pod_size=pod_size)
        system = build_system("proposed", cluster, catalog)
        total_blocks = sum(
            len(board.blocks) for board in cluster.boards.values()
        )
        tenants = [
            TenantParameters(name="gold", priority=2, weight=4.0,
                             preemptible=False,
                             block_quota=max(1, total_blocks // 2)),
            TenantParameters(name="silver", priority=1, weight=2.0,
                             preemptible=True,
                             block_quota=max(1, total_blocks * 3 // 4)),
            TenantParameters(name="scavenger", priority=0, weight=1.0,
                             preemptible=True,
                             block_quota=max(1, total_blocks * 9 // 10)),
        ]
        scheduler = TenantScheduler(
            system, tenants, TenancyParameters(max_victims=6)
        )
        per_tenant = task_count // 3
        models = {
            "gold": ["gru-h512-t1"],
            "silver": ["lstm-h512-t25"],
            "scavenger": ["lstm-h256-t150", "lstm-h512-t25"],
        }
        tasks = sorted(
            (
                task
                for offset, name in enumerate(sorted(models))
                for task in _stream(
                    name, models[name], per_tenant, rate / 3.0,
                    seed=seed + offset, id_base=offset * 100_000,
                )
            ),
            key=lambda task: (task.arrival_s, task.task_id),
        )
        result = ClusterSimulator(scheduler, "storm").run(tasks)
        return cluster, system, scheduler, tasks, result

    def test_storm_keeps_cluster_consistent(self, shared_catalog):
        cluster, system, scheduler, tasks, result = self._storm(
            shared_catalog, board_count=64, pod_size=8, task_count=240,
            rate=60000.0, seed=41,
        )
        controller = system.controller
        assert controller.index.pod_count() == 8
        assert scheduler.stats.preemption_sweeps > 0
        # Nothing lost, nothing leaked: all work completes, every index
        # and per-board count matches a from-scratch recount, quotas
        # were never pierced, and every preempted task recovered.
        assert len(result.completed) == len(tasks)
        assert controller.index.check_consistent()
        assert controller.check_residents_consistent()
        for board in cluster.boards.values():
            assert board.free_blocks == board.recount_free_blocks()
        assert scheduler.quota_violations() == {}
        stats = scheduler.stats
        assert stats.preempted_completed == stats.preempted_distinct
        assert not scheduler._preempt_pending or all(
            count == 0 for count in scheduler._preempt_pending.values()
        )
