"""Latency-insensitive interface tests: the static formulas are validated
against the cycle-level elastic-channel model."""

import pytest
from hypothesis import given, strategies as st

from repro.core.interface import (
    ElasticChannel,
    LatencyInsensitiveInterface,
    boundary_overhead_cycles,
)
from repro.errors import MappingError


class TestInterfaceStatics:
    def test_crossing_latency_equals_stages(self):
        iface = LatencyInsensitiveInterface(width_bits=64, stages=3)
        assert iface.crossing_latency_cycles == 3

    def test_transfer_cycles_zero_words(self):
        iface = LatencyInsensitiveInterface(width_bits=64)
        assert iface.transfer_cycles(0) == 0

    def test_transfer_cycles_single_word(self):
        iface = LatencyInsensitiveInterface(width_bits=64, stages=2)
        assert iface.transfer_cycles(1) == 2  # pipeline fill only

    def test_transfer_streams_at_throughput(self):
        iface = LatencyInsensitiveInterface(width_bits=64, stages=2)
        assert iface.transfer_cycles(10) == 2 + 9

    def test_invalid_stages(self):
        with pytest.raises(MappingError):
            LatencyInsensitiveInterface(width_bits=8, stages=0)

    def test_invalid_width(self):
        with pytest.raises(MappingError):
            LatencyInsensitiveInterface(width_bits=-1)


class TestBoundaryOverhead:
    def test_zero_crossings(self):
        assert boundary_overhead_cycles(0) == 0

    def test_linear_in_crossings(self):
        assert boundary_overhead_cycles(4, stages=2) == 8

    def test_negative_rejected(self):
        with pytest.raises(MappingError):
            boundary_overhead_cycles(-1)


class TestElasticChannel:
    def test_word_arrives_after_stage_count(self):
        iface = LatencyInsensitiveInterface(width_bits=8, stages=2)
        channel = ElasticChannel(iface)
        assert channel.push("x")
        arrivals = 0
        for _ in range(iface.stages):
            assert channel.pop() is None
            channel.step()
        assert channel.pop() == "x"

    def test_fifo_order(self):
        iface = LatencyInsensitiveInterface(width_bits=8, stages=1)
        channel = ElasticChannel(iface, buffer_depth=8)
        channel.push("a")
        channel.step()
        channel.push("b")
        channel.step()
        assert channel.pop() == "a"
        assert channel.pop() == "b"

    def test_backpressure_blocks_producer(self):
        iface = LatencyInsensitiveInterface(width_bits=8, stages=1)
        channel = ElasticChannel(iface, buffer_depth=1)
        accepted = 0
        for _ in range(10):
            if channel.push("w"):
                accepted += 1
        assert accepted == 2  # buffer + in-flight stage

    def test_drains_after_backpressure(self):
        iface = LatencyInsensitiveInterface(width_bits=8, stages=1)
        channel = ElasticChannel(iface, buffer_depth=1)
        channel.push("a")
        channel.push("b")
        channel.step()
        assert channel.pop() == "a"
        channel.step()
        assert channel.pop() == "b"
        assert channel.idle

    def test_idle_initially(self):
        iface = LatencyInsensitiveInterface(width_bits=8)
        assert ElasticChannel(iface).idle


@given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=30))
def test_channel_latency_matches_formula(stages, words):
    """The cycle-level model delivers the last word exactly when the static
    transfer formula predicts (no backpressure)."""
    iface = LatencyInsensitiveInterface(width_bits=8, stages=stages)
    channel = ElasticChannel(iface, buffer_depth=words + stages)
    received = 0
    cycle = 0
    sent = 0
    last_arrival = None
    while received < words and cycle < 1000:
        if sent < words:
            assert channel.push(sent)
            sent += 1
        channel.step()
        cycle += 1
        while channel.pop() is not None:
            received += 1
            last_arrival = cycle
    assert received == words
    assert last_arrival == iface.transfer_cycles(words)
