"""Dependence-analysis tests (the constraint system of the reordering tool)."""

import pytest

from repro.isa.dependencies import (
    build_dependence_graph,
    program_region_graphs,
)
from repro.isa.instructions import (
    SYNC_ADDRESS,
    Instruction,
    Op,
    endloop,
    loop,
    m_rd,
    mv_mul,
    v_copy,
    v_fill,
    v_rd,
    v_wr,
    vv_add,
)
from repro.isa.program import Program


def _edge(graph, src, dst) -> bool:
    return dst in graph.successors(src)


class TestRegisterDependences:
    def test_raw(self):
        graph = build_dependence_graph(
            [v_fill(0, 1.0, 4), v_copy(1, 0, 4)]
        )
        assert _edge(graph, 0, 1)

    def test_waw(self):
        graph = build_dependence_graph(
            [v_fill(0, 1.0, 4), v_fill(0, 2.0, 4)]
        )
        assert _edge(graph, 0, 1)

    def test_war(self):
        graph = build_dependence_graph(
            [v_copy(1, 0, 4), v_fill(0, 2.0, 4)]
        )
        assert _edge(graph, 0, 1)

    def test_independent_instructions_unordered(self):
        graph = build_dependence_graph(
            [v_fill(0, 1.0, 4), v_fill(1, 2.0, 4)]
        )
        assert not _edge(graph, 0, 1) and not _edge(graph, 1, 0)

    def test_initial_read_then_write_is_war(self):
        # Reads of registers live across iterations must still block writes.
        graph = build_dependence_graph(
            [vv_add(2, 0, 1, 4), v_fill(0, 0.0, 4)]
        )
        assert _edge(graph, 0, 1)


class TestMatrixDependences:
    def test_m_rd_then_mv_mul(self):
        graph = build_dependence_graph(
            [m_rd(0, 0x100, 4), mv_mul(1, 0, 2, 4)]
        )
        assert _edge(graph, 0, 1)

    def test_mv_mul_then_m_rd_war(self):
        graph = build_dependence_graph(
            [mv_mul(1, 0, 2, 4), m_rd(0, 0x100, 4)]
        )
        assert _edge(graph, 0, 1)

    def test_distinct_matrices_independent(self):
        graph = build_dependence_graph(
            [m_rd(0, 0x100, 4), m_rd(1, 0x900, 4)]
        )
        assert not _edge(graph, 0, 1)


class TestMemoryDependences:
    def test_overlapping_write_read(self):
        graph = build_dependence_graph(
            [v_wr(0, 0x100, 8), v_rd(1, 0x104, 8)]
        )
        assert _edge(graph, 0, 1)

    def test_disjoint_accesses_independent(self):
        graph = build_dependence_graph(
            [v_wr(0, 0x100, 8), v_rd(1, 0x200, 8)]
        )
        assert not _edge(graph, 0, 1)

    def test_read_read_independent(self):
        graph = build_dependence_graph(
            [v_rd(0, 0x100, 8), v_rd(1, 0x100, 8)]
        )
        assert not _edge(graph, 0, 1)

    def test_m_rd_range_uses_cols(self):
        wide = Instruction(Op.M_RD, dst=0, addr=0x100, length=4, imm=16.0)
        reader = v_rd(1, 0x120, 4)  # inside 0x100 + 4*16
        graph = build_dependence_graph([wide, reader])
        assert not _edge(graph, 0, 1)  # both reads
        writer = v_wr(1, 0x120, 4)
        graph = build_dependence_graph([wide, writer])
        assert _edge(graph, 0, 1)


class TestSyncOrdering:
    def test_sync_ops_totally_ordered(self):
        graph = build_dependence_graph(
            [
                v_wr(0, SYNC_ADDRESS, 4),
                v_rd(1, SYNC_ADDRESS, 8),
                v_wr(2, SYNC_ADDRESS, 4),
            ]
        )
        assert _edge(graph, 0, 1) and _edge(graph, 1, 2)

    def test_sync_independent_of_plain_dram(self):
        graph = build_dependence_graph(
            [v_wr(0, SYNC_ADDRESS, 4), v_rd(1, 0x100, 4)]
        )
        assert not _edge(graph, 0, 1)


class TestGraphUtilities:
    def test_loops_rejected(self):
        with pytest.raises(ValueError):
            build_dependence_graph([loop(2)])

    def test_is_valid_order(self):
        insts = [v_fill(0, 1.0, 4), v_copy(1, 0, 4)]
        graph = build_dependence_graph(insts)
        assert graph.is_valid_order([0, 1])
        assert not graph.is_valid_order([1, 0])
        assert not graph.is_valid_order([0])

    def test_critical_path(self):
        insts = [v_fill(0, 1.0, 4), v_copy(1, 0, 4), v_fill(2, 0.0, 4)]
        graph = build_dependence_graph(insts)
        assert graph.critical_path(lambda inst: 1.0) == pytest.approx(2.0)

    def test_program_region_graphs_split_on_loops(self):
        program = Program()
        program.extend(
            [
                v_fill(0, 0.0, 4),
                loop(2),
                vv_add(1, 0, 0, 4),
                v_copy(2, 1, 4),
                endloop(),
                v_wr(2, 0x10, 4),
            ]
        )
        regions = program_region_graphs(program)
        starts = [start for start, _ in regions]
        sizes = [len(graph.order) for _, graph in regions]
        assert starts == [0, 2, 5]
        assert sizes == [1, 2, 1]
