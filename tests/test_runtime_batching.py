"""Request-coalescing tests: the :class:`BatchExecutor` contract (buffer
until full, flush at finish, scalar fallback for singletons), batched-vs-
scalar output equality through the executor, and — the integration
invariant — unchanged DES event timing with batching on, off, or forced
scalar."""

import numpy as np
import pytest

from repro.cluster import ClusterSimulator, Task, paper_cluster
from repro.errors import ReproError
from repro.runtime import (
    BatchExecutor,
    BatchingParameters,
    Catalog,
    build_system,
)
from repro.vital import VitalCompiler

MODEL = "gru-h512-t1"  # the cheapest zoo model to actually execute


def _task(task_id: int, arrival_s: float = 0.0) -> Task:
    return Task(task_id=task_id, model_key=MODEL, arrival_s=arrival_s,
                size_class="S")


class TestBatchingParameters:
    def test_defaults(self):
        params = BatchingParameters()
        assert params.max_batch == 8 and not params.force_scalar

    def test_max_batch_validated(self):
        with pytest.raises(ReproError, match="max_batch"):
            BatchingParameters(max_batch=0)


class TestBatchExecutor:
    def test_default_payload_deterministic(self):
        executor = BatchExecutor()
        a = executor.default_payload(_task(7))
        b = executor.default_payload(_task(7))
        c = executor.default_payload(_task(8))
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert a.shape == (1, 512)

    def test_full_group_executes_immediately(self):
        executor = BatchExecutor(BatchingParameters(max_batch=2))
        tasks = [_task(0), _task(1)]
        for task in tasks:
            executor.submit(task, replicas=1, now=0.0)
        assert executor.stats.executions == 1
        assert executor.stats.full_batches == 1
        assert executor.stats.batched_lanes == 2
        for task in tasks:
            assert task.output is not None and task.output.shape == (512,)

    def test_partial_group_flushes_at_finish(self):
        executor = BatchExecutor(BatchingParameters(max_batch=8))
        tasks = [_task(i) for i in range(3)]
        for task in tasks:
            executor.submit(task, replicas=1, now=0.0)
        assert executor.stats.executions == 0
        executor.ensure_executed(tasks[0])
        assert executor.stats.executions == 1
        assert executor.stats.partial_flushes == 1
        assert all(task.output is not None for task in tasks)
        # Already-executed tasks are a no-op.
        executor.ensure_executed(tasks[1])
        assert executor.stats.executions == 1

    def test_resubmit_is_idempotent(self):
        executor = BatchExecutor(BatchingParameters(max_batch=8))
        task = _task(0)
        executor.submit(task, replicas=1, now=0.0)
        executor.submit(task, replicas=1, now=0.0)
        assert executor.stats.submitted == 1

    def test_singleton_flush_uses_scalar_fallback(self):
        executor = BatchExecutor(BatchingParameters(max_batch=8))
        task = _task(0)
        executor.submit(task, replicas=1, now=0.0)
        executor.ensure_executed(task)
        assert executor.stats.scalar_lanes == 1
        assert executor.stats.batched_lanes == 0

    def test_batched_outputs_equal_forced_scalar(self):
        """The executor inherits the simulator's bit-identity contract."""
        fast = BatchExecutor(BatchingParameters(max_batch=4))
        slow = BatchExecutor(BatchingParameters(max_batch=4, force_scalar=True))
        for executor in (fast, slow):
            for i in range(4):
                executor.submit(_task(i), replicas=1, now=0.0)
        assert fast.stats.batched_lanes == 4
        assert slow.stats.scalar_lanes == 4
        # Re-run to capture the tasks (submit consumed fresh Task objects).
        fast_tasks = [_task(i) for i in range(4)]
        slow_tasks = [_task(i) for i in range(4)]
        for task in fast_tasks:
            fast.submit(task, replicas=1, now=0.0)
        for task in slow_tasks:
            slow.submit(task, replicas=1, now=0.0)
        for got, want in zip(fast_tasks, slow_tasks):
            assert np.array_equal(got.output, want.output)

    def test_explicit_payload_respected(self):
        executor = BatchExecutor(BatchingParameters(max_batch=2))
        rng = np.random.default_rng(5)
        tasks = [_task(0), _task(1)]
        payloads = [rng.normal(0.0, 1.0, (1, 512)) for _ in tasks]
        for task, payload in zip(tasks, payloads):
            task.payload = payload
            executor.submit(task, replicas=1, now=0.0)
        reference = BatchExecutor(
            BatchingParameters(max_batch=2, force_scalar=True)
        )
        ref_tasks = [_task(0), _task(1)]
        for task, payload in zip(ref_tasks, payloads):
            task.payload = payload
            reference.submit(task, replicas=1, now=0.0)
        for got, want in zip(tasks, ref_tasks):
            assert np.array_equal(got.output, want.output)

    def test_flush_drains_every_group(self):
        executor = BatchExecutor(BatchingParameters(max_batch=8))
        tasks = [_task(0), _task(1)]
        for task in tasks:
            executor.submit(task, replicas=1, now=0.0)
        executor.flush()
        assert all(task.output is not None for task in tasks)

    def test_stats_snapshot(self):
        executor = BatchExecutor(BatchingParameters(max_batch=2))
        for i in range(4):
            executor.submit(_task(i), replicas=1, now=0.0)
        snap = executor.stats.snapshot()
        assert snap["submitted"] == 4
        assert snap["executions"] == 2
        assert snap["mean_batch"] == 2.0
        assert snap["batch_sizes"] == {"2": 2}


class TestScaleOutExecution:
    def test_two_replica_group_matches_scalar(self):
        """Scale-out coalescing: batched k-replica co-simulation equals the
        per-lane scalar scale-out, gathered slice by slice."""
        fast = BatchExecutor(BatchingParameters(max_batch=2))
        slow = BatchExecutor(BatchingParameters(max_batch=2, force_scalar=True))
        fast_tasks = [_task(0), _task(1)]
        slow_tasks = [_task(0), _task(1)]
        for task in fast_tasks:
            fast.submit(task, replicas=2, now=0.0)
        for task in slow_tasks:
            slow.submit(task, replicas=2, now=0.0)
        for got, want in zip(fast_tasks, slow_tasks):
            assert got.output.shape == (512,)
            assert np.array_equal(got.output, want.output)


class TestDESIntegration:
    """Batching must not move a single event: same schedule with the
    executor off, on, or pinned to the scalar fallback."""

    def _run(self, batching):
        catalog = Catalog(VitalCompiler())
        cluster = paper_cluster()
        system = build_system("proposed", cluster, catalog, batching=batching)
        tasks = [_task(i, arrival_s=i * 1e-4) for i in range(6)]
        result = ClusterSimulator(system, "proposed").run(tasks)
        schedule = [
            (task.task_id, task.start_s, task.finish_s)
            for task in sorted(result.completed, key=lambda t: t.task_id)
        ]
        return schedule, result, system

    def test_timestamps_unchanged_and_outputs_present(self):
        baseline, base_result, _ = self._run(batching=None)
        batched, result, system = self._run(
            BatchingParameters(max_batch=4)
        )
        scalar, scalar_result, _ = self._run(
            BatchingParameters(max_batch=4, force_scalar=True)
        )
        assert len(baseline) == 6
        assert batched == baseline
        assert scalar == baseline
        # Off by default: no outputs without an executor.
        assert all(t.output is None for t in base_result.completed)
        # On: every completed task carries its hidden state, and the
        # batched outputs equal the forced-scalar ones bitwise.
        by_id = {t.task_id: t for t in result.completed}
        for task in scalar_result.completed:
            assert by_id[task.task_id].output is not None
            assert np.array_equal(by_id[task.task_id].output, task.output)
        assert system.batch_executor.stats.submitted == 6
        assert system.batch_executor.stats.executions >= 1
