"""CLI tests (``python -m repro``)."""

import io

import pytest

from repro.cli import main


def _run(*argv) -> str:
    out = io.StringIO()
    code = main(list(argv), out=out)
    assert code == 0
    return out.getvalue()


class TestInventory:
    def test_lists_instances_and_devices(self):
        text = _run("inventory")
        assert "BW-V37" in text and "XCKU115" in text

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestDecompose:
    def test_prints_tree(self):
        text = _run("decompose", "--tiles", "3", "--depth", "2")
        assert "data-parallel x3" in text
        assert "scale-down applicable: True" in text

    def test_device_selection(self):
        text = _run("decompose", "--tiles", "3", "--device", "XCKU115")
        assert "URAM=0" in text  # KU115 memory plan has no URAM


class TestPartition:
    def test_prints_frontiers(self):
        text = _run("partition", "--tiles", "4", "--iterations", "2")
        assert "block #1" in text
        assert "frontier sizes: [1, 2, 3, 3, 4]" in text

    def test_zero_iterations(self):
        text = _run("partition", "--tiles", "4", "--iterations", "0")
        assert "frontier sizes: [1]" in text


class TestAssembleDisassemble:
    def test_roundtrip_through_files(self, tmp_path):
        source = tmp_path / "prog.s"
        binary = tmp_path / "prog.bin"
        source.write_text(
            "v_fill v0, 1.0, 8\nloop 3\nvv_add v1, v0, v0, 8\nendloop\nhalt\n"
        )
        text = _run("assemble", str(source), str(binary))
        assert "5 instructions -> 80 bytes" in text
        listing = _run("disassemble", str(binary))
        assert "vv_add v1, v0, v0, 8" in listing
        assert "loop 3" in listing


class TestExperimentCommands:
    def test_table2(self):
        assert "BW-V37" in _run("table2")

    def test_table3(self):
        assert "virtual block" in _run("table3")

    def test_isolation(self):
        text = _run("isolation")
        assert "performance isolation" in text

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestClusterStatus:
    def test_empty_cluster(self):
        text = _run("cluster-status")
        assert "board occupancy:" in text
        assert "0/16 blocks used" in text
        assert "free-block histogram" in text
        assert "fragmentation" in text

    def test_deployed_models_listed(self):
        text = _run(
            "cluster-status", "--deploy", "gru-h512-t1",
            "--deploy", "lstm-h256-t150",
        )
        assert "gru-h512-t1" in text
        assert "lstm-h256-t150" in text
        assert "XCVU37P" in text and "XCKU115" in text

    def test_infeasible_deploy_reported_not_fatal(self):
        text = _run("cluster-status", "--deploy", "no-such-model")
        assert "deploy no-such-model:" in text
        assert "fragmentation" in text


class TestInjectFaults:
    def test_reports_failures_and_recoveries(self):
        text = _run(
            "inject-faults", "--tasks", "45", "--mtbf", "0.5",
            "--mttr", "0.05", "--seed", "7",
        )
        assert "board failures" in text
        assert "recovery:" in text
        assert "availability" in text
        assert "45 tasks completed" in text

    def test_fault_free_when_mtbf_exceeds_horizon(self):
        # With an MTBF of hours against a sub-second stream the seeded
        # timeline draws no failure before the horizon.
        text = _run(
            "inject-faults", "--tasks", "12", "--mtbf", "3600",
            "--seed", "1",
        )
        assert "faults: 0 board failures" in text
        assert "availability 1.000" in text


class TestServe:
    def test_reports_admission_and_slo(self):
        text = _run("serve", "--tasks", "60", "--load", "2")
        assert "60 offered" in text
        assert "admission:" in text
        assert "SLO attainment" in text
        assert "brownout" in text

    def test_overload_with_faults_sheds_and_recovers(self):
        text = _run(
            "serve", "--tasks", "90", "--load", "6",
            "--queue-depth", "3", "--deadline", "0.05", "--mtbf", "1.0",
        )
        assert "shed" in text
        assert "faults:" in text
        assert "recovered" in text

    def test_json_output_includes_drops_and_stats(self):
        import json

        text = _run("serve", "--tasks", "40", "--load", "2", "--json")
        point = json.loads(text)
        assert point["offered"] == 40
        assert "dropped" in point
        assert "slo_admitted" in point
        assert point["arrival"] == "mmpp"

    def test_autoscale_flag_reports_decisions(self):
        text = _run(
            "serve", "--tasks", "120", "--load", "4", "--autoscale",
            "--deadline", "0.25",
        )
        assert "autoscale:" in text
        assert "ups" in text and "downs" in text

    def test_arrival_flag_selects_process(self):
        text = _run(
            "serve", "--tasks", "40", "--load", "2",
            "--arrival", "pareto", "--json",
        )
        import json

        assert json.loads(text)["arrival"] == "pareto"
