"""Tests for the Section 4.4 isolation model: instruction-buffer fit,
DRAM contention, and the experiment driver."""

import pytest

from repro.accel import BW_V37, CycleModel
from repro.accel.timing import TimingParameters
from repro.experiments import run_isolation
from repro.experiments.isolation import render
from repro.workloads.deepbench import TABLE4_BENCHMARKS, ModelSpec


class TestBufferFit:
    def test_benchmark_programs_fit(self):
        """Section 4.4's premise: whole machine codes fit on chip."""
        model = CycleModel(BW_V37)
        for spec in TABLE4_BENCHMARKS:
            assert model.program_fits_buffer(spec.program())

    def test_tiny_buffer_rejects(self):
        from dataclasses import replace

        config = replace(BW_V37, instruction_buffer_bytes=64)
        model = CycleModel(config)
        program = ModelSpec("gru", 512, 10).program()
        assert not model.program_fits_buffer(program)


class TestContentionModel:
    def setup_method(self):
        self.model = CycleModel(BW_V37)
        self.program = ModelSpec("lstm", 512, 25).program()

    def test_no_neighbours_no_change(self):
        base = self.model.latency(self.program)
        same = self.model.latency(self.program, sharing_neighbours=0)
        assert base.seconds == same.seconds

    def test_contention_monotone_in_neighbours(self):
        values = [
            self.model.latency(self.program, sharing_neighbours=n).seconds
            for n in (0, 1, 2, 4)
        ]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_buffered_sharing_penalty_small(self):
        alone = self.model.latency(self.program).seconds
        shared = self.model.latency(
            self.program, sharing_neighbours=2
        ).seconds
        assert shared / alone - 1.0 < 0.03

    def test_spilled_code_costly(self):
        buffered = self.model.latency(
            self.program, sharing_neighbours=2
        ).seconds
        spilled = self.model.latency(
            self.program, sharing_neighbours=2, instruction_buffer=False
        ).seconds
        assert spilled > 1.10 * buffered

    def test_spill_costs_even_alone(self):
        alone = self.model.latency(self.program).seconds
        spilled_alone = self.model.latency(
            self.program, instruction_buffer=False
        ).seconds
        assert spilled_alone > alone

    def test_custom_penalty_parameter(self):
        harsh = CycleModel(
            BW_V37, TimingParameters(dram_share_penalty=5.0)
        )
        mild = self.model
        harsh_lat = harsh.latency(self.program, sharing_neighbours=2).seconds
        mild_lat = mild.latency(self.program, sharing_neighbours=2).seconds
        assert harsh_lat > mild_lat


class TestIsolationExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_isolation()

    def test_one_row_per_fitting_benchmark(self, rows):
        assert len(rows) == 7  # all Table 4 benchmarks fit the VU37P

    def test_isolation_claim(self, rows):
        for row in rows:
            assert row.code_fits_buffer
            assert row.sharing_penalty < 0.03

    def test_buffer_ablation(self, rows):
        for row in rows:
            assert row.sharing_penalty_no_buffer > 0.10

    def test_render(self, rows):
        text = render(rows)
        assert "performance isolation" in text
        assert "Penalty w/o buffer" in text
