"""Instruction record tests."""

from repro.isa.instructions import (
    SYNC_ADDRESS,
    Instruction,
    Op,
    mv_mul,
    v_rd,
    v_wr,
    vv_add,
)


class TestOpMetadata:
    def test_units(self):
        assert Op.MV_MUL.unit == "mvu"
        assert Op.VV_ADD.unit == "mfu"
        assert Op.V_RD.unit == "dram"
        assert Op.LOOP.unit == "control"

    def test_memory_flags(self):
        assert Op.V_RD.reads_memory
        assert Op.M_RD.reads_memory
        assert Op.V_WR.writes_memory
        assert not Op.MV_MUL.reads_memory


class TestReadWriteSets:
    def test_mv_mul(self):
        inst = mv_mul(dst=3, ma=0, a=1, length=8)
        assert inst.reads() == {1}
        assert inst.writes() == {3}

    def test_vv_add_reads_both(self):
        inst = vv_add(dst=0, a=1, b=2, length=8)
        assert inst.reads() == {1, 2}

    def test_v_wr_reads_only(self):
        inst = v_wr(src=5, addr=0x100, length=8)
        assert inst.reads() == {5}
        assert inst.writes() == set()

    def test_halt_touches_nothing(self):
        inst = Instruction(Op.HALT)
        assert inst.reads() == set() == inst.writes()


class TestSyncDetection:
    def test_send(self):
        inst = v_wr(src=0, addr=SYNC_ADDRESS, length=4)
        assert inst.is_sync and inst.is_send and not inst.is_recv

    def test_recv(self):
        inst = v_rd(dst=0, addr=SYNC_ADDRESS + 0x1000, length=4)
        assert inst.is_sync and inst.is_recv and not inst.is_send

    def test_ordinary_dram_not_sync(self):
        assert not v_rd(dst=0, addr=0x100, length=4).is_sync

    def test_non_dram_never_sync(self):
        assert not Instruction(Op.MV_MUL, addr=SYNC_ADDRESS).is_sync


class TestRender:
    def test_renders_each_shape(self):
        cases = [
            (v_rd(1, 0x40, 16), "v_rd v1, 0x40, 16"),
            (v_wr(2, 0x80, 8), "v_wr v2, 0x80, 8"),
            (mv_mul(3, 1, 2, 64), "mv_mul v3, m1, v2, 64"),
            (vv_add(0, 1, 2, 4), "vv_add v0, v1, v2, 4"),
            (Instruction(Op.HALT), "halt"),
            (Instruction(Op.LOOP, imm=5.0), "loop 5"),
        ]
        for inst, expected in cases:
            assert inst.render() == expected

    def test_with_tag(self):
        inst = vv_add(0, 1, 2, 4).with_tag("produce:h")
        assert inst.tag == "produce:h"
        assert inst.op is Op.VV_ADD
