"""Tests for the ViTAL-like HS abstraction: devices, virtual blocks,
floorplanning, the compiler and the bitstream/controller layer."""

import pytest

from repro.core import partition
from repro.errors import AllocationError, CompileError, DeploymentError
from repro.resources import ResourceVector
from repro.units import mbit, mhz
from repro.vital import (
    Bitstream,
    BitstreamStore,
    LowLevelController,
    PhysicalFPGA,
    VitalCompiler,
    XCKU115,
    XCVU37P,
    achieved_frequency,
)
from repro.vital.compiler import estimate_compile_seconds
from repro.vital.floorplan import (
    FloorplanQuality,
    frequency_gain_of_floorplanning,
)


class TestDeviceModels:
    def test_vu37p_shape(self):
        assert XCVU37P.usable_blocks == 16
        assert XCVU37P.has_uram
        assert XCVU37P.frequency_hz == mhz(400)

    def test_ku115_shape(self):
        assert XCKU115.usable_blocks == 10
        assert not XCKU115.has_uram
        assert XCKU115.block_capacity.uram_bits == 0

    def test_blocks_needed_binding_resource(self):
        demand = ResourceVector(dsps=1200.0)  # ~2.07 blocks of 580 DSPs
        assert XCVU37P.blocks_needed(demand) == 3

    def test_blocks_needed_minimum_one(self):
        assert XCVU37P.blocks_needed(ResourceVector(luts=1.0)) == 1

    def test_impossible_demand(self):
        demand = ResourceVector(uram_bits=mbit(1.0))
        assert not XCKU115.fits(demand)

    def test_fits(self):
        assert XCVU37P.fits(ResourceVector(luts=100e3))
        assert not XCVU37P.fits(ResourceVector(luts=10e6))


class TestPhysicalFPGA:
    def test_fresh_board_all_free(self):
        board = PhysicalFPGA("b0", XCKU115)
        assert board.free_blocks == 10
        assert board.used_blocks == 0

    def test_allocate_and_release(self):
        board = PhysicalFPGA("b0", XCKU115)
        indices = board.allocate("dep-1", 4)
        assert len(indices) == 4
        assert board.free_blocks == 6
        assert board.owners() == {"dep-1"}
        assert board.release("dep-1") == 4
        assert board.free_blocks == 10

    def test_over_allocation_rejected(self):
        board = PhysicalFPGA("b0", XCKU115)
        with pytest.raises(AllocationError):
            board.allocate("dep-1", 11)

    def test_zero_allocation_rejected(self):
        board = PhysicalFPGA("b0", XCKU115)
        with pytest.raises(AllocationError):
            board.allocate("dep-1", 0)

    def test_disjoint_owners(self):
        board = PhysicalFPGA("b0", XCVU37P)
        a = board.allocate("a", 5)
        b = board.allocate("b", 5)
        assert set(a).isdisjoint(b)

    def test_release_unknown_owner_noop(self):
        board = PhysicalFPGA("b0", XCKU115)
        assert board.release("ghost") == 0


class TestFloorplan:
    def test_floorplanned_reaches_device_clock(self):
        demand = ResourceVector(luts=600e3)
        assert achieved_frequency(XCVU37P, demand) == XCVU37P.frequency_hz

    def test_automatic_is_slower(self):
        demand = ResourceVector(luts=600e3, dsps=7500.0)
        auto = achieved_frequency(XCVU37P, demand, FloorplanQuality.AUTOMATIC)
        assert auto < XCVU37P.frequency_hz

    def test_congestion_grows_with_utilisation(self):
        light = achieved_frequency(
            XCVU37P, ResourceVector(luts=100e3), FloorplanQuality.AUTOMATIC
        )
        heavy = achieved_frequency(
            XCVU37P, ResourceVector(luts=1.2e6), FloorplanQuality.AUTOMATIC
        )
        assert heavy < light

    def test_gain_positive(self):
        gain = frequency_gain_of_floorplanning(
            XCVU37P, ResourceVector(luts=600e3)
        )
        assert gain > 0


class TestBitstreamStore:
    def _bitstream(self, signature="sig", blocks=4):
        return Bitstream(
            artifact_id=Bitstream.make_id("acc", signature, "XCVU37P", blocks),
            accelerator="acc",
            cluster_index=0,
            device_type="XCVU37P",
            virtual_blocks=blocks,
            compile_seconds=100.0,
        )

    def test_content_addressing_ignores_accelerator_name(self):
        a = Bitstream.make_id("acc-a", "sig", "XCVU37P", 4)
        b = Bitstream.make_id("acc-b", "sig", "XCVU37P", 4)
        assert a == b

    def test_different_device_different_id(self):
        a = Bitstream.make_id("acc", "sig", "XCVU37P", 4)
        b = Bitstream.make_id("acc", "sig", "XCKU115", 4)
        assert a != b

    def test_cache_hit(self):
        store = BitstreamStore()
        first, cached_first = store.get_or_add(self._bitstream())
        second, cached_second = store.get_or_add(self._bitstream())
        assert not cached_first and cached_second
        assert first is second
        assert store.hits == 1 and store.misses == 1

    def test_total_compile_seconds_counts_unique(self):
        store = BitstreamStore()
        store.get_or_add(self._bitstream("one"))
        store.get_or_add(self._bitstream("one"))
        store.get_or_add(self._bitstream("two"))
        assert store.total_compile_seconds() == 200.0

    def test_lookup_unknown(self):
        with pytest.raises(DeploymentError):
            BitstreamStore().lookup("nope")


class TestLowLevelController:
    def _setup(self):
        store = BitstreamStore()
        bitstream, _ = store.get_or_add(
            Bitstream(
                artifact_id="art-1",
                accelerator="acc",
                cluster_index=0,
                device_type="XCKU115",
                virtual_blocks=3,
            )
        )
        return LowLevelController(store), bitstream

    def test_configure_allocates_and_logs(self):
        controller, bitstream = self._setup()
        board = PhysicalFPGA("b0", XCKU115)
        indices = controller.configure(board, "dep-1", bitstream.artifact_id)
        assert len(indices) == 3
        assert controller.log[0].action == "configure"
        assert controller.log[0].blocks == indices

    def test_configure_wrong_device_type(self):
        controller, bitstream = self._setup()
        board = PhysicalFPGA("v0", XCVU37P)
        with pytest.raises(DeploymentError, match="targets"):
            controller.configure(board, "dep-1", bitstream.artifact_id)

    def test_release_logs(self):
        controller, bitstream = self._setup()
        board = PhysicalFPGA("b0", XCKU115)
        controller.configure(board, "dep-1", bitstream.artifact_id)
        assert controller.release(board, "dep-1") == 3
        assert controller.log[-1].action == "release"


class TestCompiler:
    def test_compile_cluster_produces_image(self):
        compiler = VitalCompiler()
        demand = ResourceVector(luts=150e3, dsps=1000.0)
        image, bitstream, cached = compiler.compile_cluster(
            "acc", 1, "sig", demand, XCVU37P
        )
        assert image.virtual_blocks == 2
        assert image.artifact == bitstream.artifact_id
        assert not cached

    def test_uram_retargeted_to_bram_on_ku115(self):
        compiler = VitalCompiler()
        demand = ResourceVector(bram_bits=mbit(2.0), uram_bits=mbit(2.0))
        image, _, _ = compiler.compile_cluster("acc", 1, "sig", demand, XCKU115)
        assert image.resources.uram_bits == 0
        assert image.resources.bram_bits == mbit(4.0)

    def test_oversized_cluster_rejected(self):
        compiler = VitalCompiler()
        demand = ResourceVector(luts=5e6)
        with pytest.raises(CompileError):
            compiler.compile_cluster("acc", 1, "sig", demand, XCVU37P)

    def test_compile_time_scales_with_logic(self):
        small = estimate_compile_seconds(ResourceVector(luts=10e3))
        big = estimate_compile_seconds(ResourceVector(luts=600e3))
        assert big > small > 0

    def test_compile_accelerator_end_to_end(self, mini_decomposed):
        tree = partition(mini_decomposed, iterations=1)
        compiled = VitalCompiler().compile_accelerator(mini_decomposed, tree)
        options = compiled.mapping.sorted_options()
        assert options
        assert options[0].num_clusters == 1
        # Every option deployable on at least one device.
        for option in options:
            assert option.is_deployable()

    def test_control_colocated_with_first_cluster(self, mini_decomposed):
        tree = partition(mini_decomposed, iterations=1)
        compiled = VitalCompiler().compile_accelerator(mini_decomposed, tree)
        two_way = compiled.mapping.option_by_id(
            [o.option_id for o in compiled.mapping.options if o.num_clusters == 2][0]
        )
        first, second = two_way.cluster_indices
        # Any device image of the first cluster carries the control demand.
        device = two_way.feasible_types(first)[0]
        first_res = two_way.images[first][device].resources
        second_res = two_way.images[second][device].resources
        assert first_res.ffs > second_res.ffs  # control adds registers
