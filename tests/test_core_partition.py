"""Partitioning-tool tests (paper Section 2.2.2, Fig. 6), including the
frontier/coverage invariants as hypothesis properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import PatternKind, partition
from repro.core.partition import Partitioner
from repro.core.softblock import data_block, leaf_block, pipeline_block
from repro.errors import PartitionError
from repro.resources import ResourceVector


def _leaf(name, luts=10.0, in_bits=8, out_bits=8):
    return leaf_block(
        name,
        resources=ResourceVector(luts=luts),
        in_bits=in_bits,
        out_bits=out_bits,
    )


class TestPipelineSplit:
    def test_cut_at_minimum_bandwidth(self):
        stages = [
            _leaf("a", out_bits=64),
            _leaf("b", out_bits=8),   # narrowest connection: cut here
            _leaf("c", out_bits=128),
            _leaf("d"),
        ]
        tree = partition(pipeline_block("p", stages), iterations=1)
        root = tree.root
        assert root.cut_bits == 8
        assert [leaf.name for leaf in root.left.cluster.leaves()] == ["a", "b"]
        assert [leaf.name for leaf in root.right.cluster.leaves()] == ["c", "d"]

    def test_cut_kind_recorded(self):
        tree = partition(
            pipeline_block("p", [_leaf("a"), _leaf("b")]), iterations=1
        )
        assert tree.root.cut_kind is PatternKind.PIPELINE


class TestDataSplit:
    def test_even_halves(self):
        lanes = [_leaf(f"l{i}") for i in range(6)]
        tree = partition(data_block("d", lanes), iterations=1)
        assert len(tree.root.left.cluster.leaves()) == 3
        assert len(tree.root.right.cluster.leaves()) == 3

    def test_odd_split_bias_left(self):
        lanes = [_leaf(f"l{i}") for i in range(5)]
        tree = partition(data_block("d", lanes), iterations=1)
        assert len(tree.root.left.cluster.leaves()) == 3
        assert len(tree.root.right.cluster.leaves()) == 2

    def test_cut_counts_moved_half_io(self):
        lanes = [_leaf(f"l{i}", in_bits=16, out_bits=4) for i in range(4)]
        tree = partition(data_block("d", lanes), iterations=1)
        assert tree.root.cut_bits == 2 * (16 + 4)


class TestIterations:
    def test_zero_iterations(self, mini_decomposed):
        tree = partition(mini_decomposed, iterations=0)
        assert not tree.root.is_split
        assert tree.max_ways() == 1

    def test_negative_iterations_rejected(self, mini_decomposed):
        with pytest.raises(PartitionError):
            partition(mini_decomposed, iterations=-1)

    def test_two_iterations_give_up_to_four_ways(self, mini_partition):
        assert mini_partition.max_ways() == 4

    def test_leaf_cannot_split(self):
        tree = partition(_leaf("only"), iterations=3)
        assert tree.max_ways() == 1

    def test_split_stops_at_leaves(self):
        tree = partition(
            data_block("d", [_leaf("a"), _leaf("b")]), iterations=5
        )
        assert tree.max_ways() == 2

    def test_min_cluster_leaves(self):
        lanes = [_leaf(f"l{i}") for i in range(8)]
        tool = Partitioner(min_cluster_leaves=4)
        tree = tool.partition(data_block("d", lanes), iterations=3)
        assert tree.max_ways() == 2  # 8 -> 4+4, then blocked


class TestFrontiers:
    def test_frontiers_sorted_by_size(self, mini_partition):
        sizes = [len(f) for f in mini_partition.frontiers()]
        assert sizes == sorted(sizes)
        assert sizes[0] == 1

    def test_frontier_of_size(self, mini_partition):
        frontier = mini_partition.frontier_of_size(2)
        assert len(frontier) == 2

    def test_frontier_of_missing_size(self, mini_partition):
        with pytest.raises(PartitionError):
            mini_partition.frontier_of_size(7)

    def test_fig6_three_device_frontier(self, mini_partition):
        """Fig. 6: blocks #2, #3, #4 style frontier covering 3 devices."""
        frontier = mini_partition.frontier_of_size(3)
        leaves = sorted(
            leaf.name for node in frontier for leaf in node.cluster.leaves()
        )
        all_leaves = sorted(
            leaf.name for leaf in mini_partition.root.cluster.leaves()
        )
        assert leaves == all_leaves

    def test_cut_bandwidth_zero_for_whole(self, mini_partition):
        whole = mini_partition.frontier_of_size(1)
        assert mini_partition.cut_bandwidth(whole) == 0

    def test_cut_bandwidth_accumulates(self, mini_partition):
        two = mini_partition.frontier_of_size(2)
        four = mini_partition.frontier_of_size(4)
        assert mini_partition.cut_bandwidth(four) > mini_partition.cut_bandwidth(
            two
        )


# -- hypothesis: coverage and conservation invariants -------------------------


@st.composite
def pattern_trees(draw, depth=3):
    if depth == 0 or draw(st.integers(0, 2)) == 0:
        index = draw(st.integers(0, 9999))
        return _leaf(
            f"leaf{index}",
            luts=float(draw(st.integers(1, 50))),
            in_bits=draw(st.integers(1, 64)),
            out_bits=draw(st.integers(1, 64)),
        )
    factory = draw(st.sampled_from([data_block, pipeline_block]))
    children = [
        draw(pattern_trees(depth=depth - 1))
        for _ in range(draw(st.integers(2, 4)))
    ]
    return factory("node", children)


@settings(max_examples=40, deadline=None)
@given(pattern_trees(), st.integers(min_value=0, max_value=3))
def test_every_frontier_partitions_the_leaves(tree, iterations):
    """Every frontier covers each source leaf exactly once."""
    result = Partitioner().partition(tree, iterations=iterations)
    base = sorted(leaf.name for leaf in tree.leaves())
    for frontier in result.frontiers():
        covered = sorted(
            leaf.name
            for node in frontier
            for leaf in node.cluster.leaves()
        )
        assert covered == base


@settings(max_examples=40, deadline=None)
@given(pattern_trees(), st.integers(min_value=0, max_value=3))
def test_frontier_resources_conserved(tree, iterations):
    result = Partitioner().partition(tree, iterations=iterations)
    total = tree.resources().luts
    for frontier in result.frontiers():
        frontier_total = sum(node.resources().luts for node in frontier)
        assert frontier_total == pytest.approx(total)


@settings(max_examples=30, deadline=None)
@given(pattern_trees())
def test_max_ways_bounded_by_2_pow_iterations(tree):
    for iterations in range(3):
        result = Partitioner().partition(tree, iterations=iterations)
        assert result.max_ways() <= 2 ** iterations
