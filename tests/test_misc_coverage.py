"""Coverage for smaller surfaces: the primitive registry, error hierarchy,
report helpers, host link, fabric internals, and 4-way exchange ordering."""

import pytest

from repro import errors
from repro.cluster.network import RingNetwork
from repro.cluster.topology import HostLink, paper_cluster
from repro.experiments.report import pct
from repro.resources import ResourceVector
from repro.rtl import primitives
from repro.rtl.ir import Direction, Port


class TestPrimitiveRegistry:
    def test_lookup_known(self):
        cell = primitives.lookup("DFF")
        assert cell is not None
        assert cell.family == "register"

    def test_lookup_unknown(self):
        assert primitives.lookup("NOT_A_CELL") is None
        assert not primitives.is_primitive("NOT_A_CELL")

    def test_cost_of_unknown_is_zero(self):
        assert primitives.cell_cost("NOT_A_CELL") == ResourceVector.zero()

    def test_memory_cells_carry_capacity(self):
        assert primitives.cell_cost("BRAM36").bram_bits == 36 * 1024
        assert primitives.cell_cost("URAM288").uram_bits == 288 * 1024

    def test_register_idempotent(self):
        cell = primitives.lookup("DFF")
        assert primitives.register(cell) is cell

    def test_conflicting_registration_rejected(self):
        clash = primitives.PrimitiveCell(
            name="DFF",
            ports={"x": Port("x", Direction.INPUT, 1)},
            cost=ResourceVector(luts=99.0),
        )
        with pytest.raises(ValueError):
            primitives.register(clash)

    def test_all_cells_have_nonnegative_costs(self):
        for cell in primitives.REGISTRY.values():
            assert cell.cost.is_nonnegative()

    def test_bfp_mac_cheap_in_luts(self):
        """The BFP design point: a BFP MAC costs far less than an FP16
        multiplier in LUTs+DSPs — why BrainWave uses BFP for the MVU."""
        bfp = primitives.cell_cost("BFP_MAC")
        fp16 = primitives.cell_cost("FP16_MUL")
        assert bfp.luts < fp16.luts
        assert bfp.dsps < fp16.dsps


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj is errors.ReproError

    def test_parse_error_line_prefix(self):
        err = errors.RTLParseError("bad token", line=7)
        assert "line 7" in str(err)
        assert err.line == 7

    def test_assembler_error_without_line(self):
        err = errors.AssemblerError("oops")
        assert err.line is None

    def test_catch_at_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.PartitionError("x")
        with pytest.raises(errors.MappingError):
            raise errors.ResourceExceededError("y")


class TestReportHelpers:
    def test_pct(self):
        assert pct(0.123) == "12.3%"

    def test_pct_zero(self):
        assert pct(0.0) == "0.0%"


class TestHostLink:
    def test_defaults(self):
        link = HostLink()
        assert link.latency_s > 0
        assert link.bandwidth_bps > 0

    def test_cluster_carries_host_link(self):
        assert paper_cluster().host_link.latency_s > 0


class TestFourWayExchange:
    def test_exchange_grows_with_members_spread(self):
        ring = RingNetwork(["a", "b", "c", "d"])
        two = ring.exchange_time(["a", "b"], 256)
        four = ring.exchange_time(["a", "b", "c", "d"], 256)
        assert four > two  # the worst pair is 2 hops apart

    def test_exchange_time_scales_with_slice(self):
        ring = RingNetwork(["a", "b"])
        small = ring.exchange_time(["a", "b"], 128)
        large = ring.exchange_time(["a", "b"], 1024)
        assert large > small


class TestFabricInternals:
    def test_pending_rounds(self):
        import numpy as np

        from repro.accel.functional import ScaleOutFabric
        from repro.isa.instructions import SYNC_ADDRESS

        fabric = ScaleOutFabric(2)
        assert fabric.pending_rounds(SYNC_ADDRESS) == 0
        fabric.send(0, SYNC_ADDRESS, np.ones(2))
        assert fabric.pending_rounds(SYNC_ADDRESS) == 0  # replica 1 missing
        fabric.send(1, SYNC_ADDRESS, np.ones(2))
        assert fabric.pending_rounds(SYNC_ADDRESS) == 1

    def test_single_replica_fabric_rejected(self):
        from repro.accel.functional import ScaleOutFabric
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            ScaleOutFabric(1)


class TestFourWayScaleOutPlans:
    def test_catalog_supports_four_replicas(self):
        """max_replicas=4 unlocks models too big even for FPGA pairs."""
        from repro.runtime import Catalog
        from repro.vital import VitalCompiler
        from repro.workloads.deepbench import ModelSpec

        catalog = Catalog(VitalCompiler(), max_replicas=4)
        entry = catalog.entry(ModelSpec("lstm", 2560, 25))
        assert entry.min_replicas() == 4
        plan = entry.sorted_plans()[0]
        assert len(plan.programs) == 4
        for program in plan.programs:
            assert program.metadata["scaleout"]["replicas"] == 4
