"""Tests for design flattening (the decomposer's step-1 fallback)."""

from repro.accel import BW_V37, generate_accelerator
from repro.rtl import (
    design_resources,
    flatten_to_primitives,
    primitive_census,
    validate_design,
)
from repro.rtl.builder import DesignBuilder


class TestFlatten:
    def test_single_module_result(self, mini_design):
        flat = flatten_to_primitives(mini_design)
        assert len(flat.modules) == 1
        assert flat.top == "top"

    def test_root_ports_preserved(self, mini_design):
        flat = flatten_to_primitives(mini_design)
        original = mini_design.top_module
        assert set(flat.top_module.ports) == set(original.ports)
        assert flat.top_module.ports["vec"].width == 64

    def test_hierarchical_instance_names(self, mini_design):
        flat = flatten_to_primitives(mini_design)
        names = set(flat.top_module.instances)
        assert "lane0/sa/mac0" in names
        assert "dec/r0" in names

    def test_only_primitive_instances(self, mini_design):
        from repro.rtl import primitives

        flat = flatten_to_primitives(mini_design)
        for inst in flat.top_module.instances.values():
            assert primitives.is_primitive(inst.module_name)

    def test_connectivity_lifted(self, mini_design):
        flat = flatten_to_primitives(mini_design)
        top = flat.top_module
        # Within one lane, stage_a's two MACs chain through a lifted net.
        mac0 = top.instances["lane0/sa/mac0"]
        mac1 = top.instances["lane0/sa/mac1"]
        assert mac0.connections["acc_out"] == mac1.connections["acc_in"]
        # The broadcast input reaches every lane's head primitive nets
        # through the shared 'vec' port net.
        assert "vec" in top.nets

    def test_flat_design_validates(self, mini_design):
        flat = flatten_to_primitives(mini_design)
        validate_design(flat)  # warnings allowed, no hard errors

    def test_census(self, mini_design):
        census = primitive_census(mini_design)
        # 4 lanes x (2 BFP_MAC) + decoder DFF etc.
        assert census["BFP_MAC"] == 8
        assert census["DFF"] == 1
        assert census["INT_ADD"] == 4

    def test_census_scales_with_lanes(self):
        small = primitive_census(
            generate_accelerator(BW_V37.with_tiles(2, name="flat-a"))
        )
        large = primitive_census(
            generate_accelerator(BW_V37.with_tiles(4, name="flat-b"))
        )
        assert large["BFP_MAC"] == 2 * small["BFP_MAC"]

    def test_assign_aliases_resolved(self):
        db = DesignBuilder("alias")
        m = db.module("inner")
        m.inputs(("a", 1)).outputs(("y", 1))
        m.nets("t")
        m.assign("t", "a")
        m.instance("g", "NOT", a="t", y="y")
        m.build()
        m = db.module("top")
        m.inputs(("x", 1)).outputs(("z", 1))
        m.instance("u", "inner", a="x", y="z")
        m.build()
        db.top("top")
        flat = flatten_to_primitives(db.build())
        gate = flat.top_module.instances["u/g"]
        assert gate.connections["a"] == "x"
        assert gate.connections["y"] == "z"

    def test_primitive_resources_subset_of_estimate(self, mini_design):
        """The flat primitive cost never exceeds the hierarchical estimate
        (declared overrides only ever add to primitive counts)."""
        from repro.rtl.primitives import cell_cost

        flat = flatten_to_primitives(mini_design)
        flat_cost_luts = sum(
            cell_cost(inst.module_name).luts
            for inst in flat.top_module.instances.values()
        )
        assert flat_cost_luts <= design_resources(mini_design).luts + 1e-9
