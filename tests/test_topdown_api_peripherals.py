"""Tests for the top-down decomposition flow, peripheral constraints and
the hypervisor API."""

import pytest

from repro.accel import BW_V37, CONTROL_MODULES, generate_accelerator
from repro.cluster import paper_cluster
from repro.core import PatternKind, decompose, decompose_top_down
from repro.errors import CompileError, DecomposeError, DeploymentError
from repro.resources import ResourceVector
from repro.runtime import Catalog, HypervisorAPI, SystemController
from repro.units import mhz
from repro.vital import LowLevelController, VitalCompiler, XCVU37P
from repro.vital.device import FPGAModel


class TestTopDownFlow:
    @pytest.fixture(scope="class")
    def both(self):
        design = generate_accelerator(BW_V37.with_tiles(4, name="td-test"))
        return (
            decompose_top_down(design, CONTROL_MODULES),
            decompose(design, CONTROL_MODULES),
        )

    def test_root_pattern_matches_bottom_up(self, both):
        top_down, bottom_up = both
        assert top_down.data_root.kind is bottom_up.data_root.kind
        assert len(top_down.data_root.children) == len(
            bottom_up.data_root.children
        )

    def test_lane_stages_match(self, both):
        top_down, bottom_up = both
        td_stages = [lane.module_name for lane in top_down.data_root.children[0].children]
        bu_stages = [lane.module_name for lane in bottom_up.data_root.children[0].children]
        assert td_stages == bu_stages

    def test_leaf_sets_equal(self, both):
        top_down, bottom_up = both
        assert sorted(
            leaf.module_name for leaf in top_down.data_root.leaves()
        ) == sorted(leaf.module_name for leaf in bottom_up.data_root.leaves())

    def test_resources_equal(self, both):
        top_down, bottom_up = both
        assert list(top_down.total_resources()) == pytest.approx(
            list(bottom_up.total_resources())
        )

    def test_inter_stage_bandwidths_match(self, both):
        top_down, bottom_up = both
        td = [c.out_bits for c in top_down.data_root.children[0].children]
        bu = [c.out_bits for c in bottom_up.data_root.children[0].children]
        assert td == bu

    def test_requires_control_mark(self):
        design = generate_accelerator(BW_V37.with_tiles(2, name="td-nc"))
        with pytest.raises(DecomposeError):
            decompose_top_down(design, control_modules={"nothing"})

    def test_mini_design(self, mini_design):
        result = decompose_top_down(mini_design, {"decoder"})
        assert result.data_root.kind is PatternKind.DATA
        assert len(result.data_root.children) == 4


class TestPeripheralConstraints:
    def _networkless_device(self):
        return FPGAModel(
            name="XCNONET",
            resources=XCVU37P.resources,
            block_capacity=XCVU37P.block_capacity,
            total_blocks=XCVU37P.total_blocks,
            frequency_hz=mhz(400),
            peripherals=frozenset({"pcie", "dram"}),
        )

    def test_provides(self):
        assert XCVU37P.provides({"dram", "network"})
        assert not self._networkless_device().provides({"network"})

    def test_compile_rejects_missing_peripheral(self):
        compiler = VitalCompiler()
        with pytest.raises(CompileError, match="network"):
            compiler.compile_cluster(
                "acc", 1, "sig", ResourceVector(luts=1000.0),
                self._networkless_device(),
                required_peripherals=frozenset(("dram", "network")),
            )

    def test_single_cluster_ok_without_network(self, mini_decomposed):
        from repro.core import partition

        device = self._networkless_device()
        compiler = VitalCompiler(devices={device.name: device})
        tree = partition(mini_decomposed, iterations=1)
        compiled = compiler.compile_accelerator(mini_decomposed, tree)
        # Only the 1-cluster option survives: multi-cluster frontiers need
        # the inter-FPGA network this device lacks.
        assert [o.num_clusters for o in compiled.mapping.options] == [1]


class TestHypervisorAPI:
    @pytest.fixture
    def api(self):
        catalog = Catalog(VitalCompiler())
        controller = SystemController(
            paper_cluster(), catalog, LowLevelController(catalog.compiler.store)
        )
        return HypervisorAPI(controller)

    def test_submit_and_complete(self, api):
        handle = api.submit("gru-h512-t1")
        assert handle is not None
        assert handle.predicted_service_s > 0
        assert len(handle.fpga_ids) == 1
        assert api.in_flight() == 1
        api.complete(handle)
        assert api.in_flight() == 0

    def test_resubmit_reuses_deployment(self, api):
        first = api.submit("gru-h512-t1")
        api.complete(first)
        second = api.submit("gru-h512-t1")
        assert second.deployment_id == first.deployment_id
        # The second admission pays no reconfiguration.
        assert second.predicted_service_s < first.predicted_service_s

    def test_double_complete_rejected(self, api):
        handle = api.submit("gru-h512-t1")
        api.complete(handle)
        with pytest.raises(DeploymentError):
            api.complete(handle)

    def test_submit_returns_none_when_full(self, api):
        handles = []
        while True:
            handle = api.submit("gru-h2304-t250")
            if handle is None:
                break
            handles.append(handle)
        assert len(handles) >= 1  # at least one 2-FPGA deployment fits

    def test_status_snapshot(self, api):
        api.submit("lstm-h256-t150")
        status = api.status()
        assert "lstm-h256-t150" in status.models_resident
        assert status.deployments[0]["state"] == "busy"
        assert sum(status.free_blocks.values()) < 58

    def test_evict_idle(self, api):
        handle = api.submit("gru-h512-t1")
        api.complete(handle)
        assert api.evict_idle("gru-h512-t1") == 1
        assert api.status().models_resident == []
