"""End-to-end integration: the complete offline + runtime pipeline, from
RTL generation to serving tasks, exercised through the public API only."""

import numpy as np
import pytest

import repro
from repro.accel import (
    BW_V37,
    CONTROL_MODULES,
    CycleModel,
    generate_accelerator,
)
from repro.accel.codegen import GRUCodegen
from repro.accel.functional import run_program
from repro.accel.codegen import OUT_BASE
from repro.cluster import ClusterSimulator, paper_cluster
from repro.core import decompose, partition, render_tree
from repro.isa import decode_program, encode_program
from repro.rtl import emit_design, parse_design, validate_design
from repro.runtime import Catalog, build_system
from repro.vital import VitalCompiler
from repro.workloads import TABLE1_COMPOSITIONS, generate_workload


class TestPackage:
    def test_version(self):
        assert repro.__version__

    def test_public_modules_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestOfflinePipeline:
    """Generate -> emit/parse -> decompose -> partition -> compile."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        config = BW_V37.with_tiles(6, name="e2e-6t")
        design = generate_accelerator(config)
        validate_design(design)
        # Round-trip through Verilog text, as an external tool would.
        design = parse_design(emit_design(design), name=config.name)
        design.top = "top"
        decomposed = decompose(design, CONTROL_MODULES, name=config.name)
        tree = partition(decomposed, iterations=2)
        compiled = VitalCompiler().compile_accelerator(decomposed, tree)
        return design, decomposed, tree, compiled

    def test_decomposition_through_text_roundtrip(self, pipeline):
        _, decomposed, _, _ = pipeline
        assert decomposed.supports_scale_down()
        assert len(decomposed.data_root.children) == 6

    def test_partition_frontiers(self, pipeline):
        _, _, tree, _ = pipeline
        assert tree.max_ways() == 4

    def test_every_frontier_compiled(self, pipeline):
        _, _, tree, compiled = pipeline
        assert len(compiled.mapping.options) == len(tree.frontiers())

    def test_render_tree_works(self, pipeline):
        _, decomposed, _, _ = pipeline
        text = render_tree(decomposed.data_root, max_depth=2)
        assert "data-parallel x6" in text


class TestNumericalPipeline:
    """Codegen -> binary -> decode -> execute == reference, then scale-out."""

    def test_program_survives_binary_and_executes(self, gru_small):
        weights, xs = gru_small
        gen = GRUCodegen(weights, xs.shape[0])
        program = gen.build()
        decoded = decode_program(encode_program(program), name=program.name)
        # Tags are tool metadata and do not survive encoding; execution
        # semantics must.
        sim = run_program(decoded, preload=lambda s: gen.preload(s, xs))
        direct = run_program(program, preload=lambda s: gen.preload(s, xs))
        assert np.array_equal(
            sim.dram.read(OUT_BASE, weights.hidden),
            direct.dram.read(OUT_BASE, weights.hidden),
        )

    def test_timing_model_accepts_generated_programs(self, gru_small):
        weights, xs = gru_small
        program = GRUCodegen(weights, xs.shape[0]).build()
        report = CycleModel(BW_V37).latency(program)
        assert report.seconds > 0


class TestServingPipeline:
    """Catalog -> controller -> cluster simulation, shared bitstream store."""

    def test_full_system_run(self):
        catalog = Catalog(VitalCompiler())
        cluster = paper_cluster()
        system = build_system("proposed", cluster, catalog)
        tasks = generate_workload(
            TABLE1_COMPOSITIONS[6], 60, arrival_rate_per_s=1e4, seed=9
        )
        result = ClusterSimulator(system, "proposed").run(tasks)
        assert len(result.completed) == 60
        assert result.throughput > 0
        # The low-level controller logged real configure events.
        assert any(
            event.action == "configure"
            for event in system.controller.low_level.log
        )

    def test_cluster_clean_after_eviction_cycle(self):
        catalog = Catalog(VitalCompiler())
        cluster = paper_cluster()
        system = build_system("proposed", cluster, catalog)
        tasks = generate_workload(
            TABLE1_COMPOSITIONS[4], 40, arrival_rate_per_s=1e4, seed=3
        )
        ClusterSimulator(system, "proposed").run(tasks)
        # Every block owner corresponds to a live deployment.
        live = set(system.controller.deployments)
        for board in cluster.boards.values():
            assert board.owners() <= live
