"""Fault-injection and failure-recovery tests (:mod:`repro.faults`).

Covers the health-state machine on boards and its placement-index
surfacing, the seeded injector's determinism, the recovery manager's four
paths (same-width checkpoint restore, deferred recovery at release,
scale-down fallback, backoff retry/abandonment) and the DES integration —
including that the whole subsystem is inert when disabled.
"""

import pytest

from repro.cluster import ClusterSimulator, Task, paper_cluster
from repro.errors import AllocationError, SimulationError
from repro.faults import FaultInjector, FaultModelParameters
from repro.runtime import Catalog, build_system
from repro.runtime.deployment import Deployment, DeploymentState
from repro.vital import BoardHealth, VitalCompiler
from repro.vital.device import XCVU37P
from repro.vital.virtual_block import PhysicalFPGA


@pytest.fixture(scope="module")
def catalog():
    return Catalog(VitalCompiler())


def _system(catalog, recovery=True, **kwargs):
    cluster = paper_cluster()
    system = build_system("proposed", cluster, catalog, recovery=recovery,
                          **kwargs)
    return cluster, system


class TestBoardHealth:
    def test_healthy_board_is_placeable(self):
        board = PhysicalFPGA("b0", XCVU37P)
        assert board.health is BoardHealth.HEALTHY
        assert board.is_placeable
        assert board.can_host(4)

    def test_degraded_and_failed_refuse_new_placements(self):
        board = PhysicalFPGA("b0", XCVU37P)
        board.set_health(BoardHealth.DEGRADED)
        assert not board.can_host(1)
        board.set_health(BoardHealth.FAILED)
        assert not board.can_host(1)
        with pytest.raises(AllocationError, match="failed"):
            board.allocate("d", 2)

    def test_degraded_board_can_still_release(self):
        board = PhysicalFPGA("b0", XCVU37P)
        board.allocate("d", 3)
        board.set_health(BoardHealth.DEGRADED)
        assert board.release("d") == 3

    def test_health_subscription_fires_once_per_transition(self):
        board = PhysicalFPGA("b0", XCVU37P)
        seen = []
        board.subscribe_health(lambda b, old: seen.append((old, b.health)))
        board.set_health(BoardHealth.FAILED)
        board.set_health(BoardHealth.FAILED)  # no-op
        board.set_health(BoardHealth.HEALTHY)
        assert seen == [
            (BoardHealth.HEALTHY, BoardHealth.FAILED),
            (BoardHealth.FAILED, BoardHealth.HEALTHY),
        ]

    def test_index_excludes_unhealthy_boards(self, catalog):
        cluster, system = _system(catalog, recovery=False)
        controller = system.controller
        board = cluster.board("vu37p-0")
        before = controller.index.count_with_at_least("XCVU37P", 1)
        controller.on_board_degraded(board)
        assert controller.index.count_with_at_least("XCVU37P", 1) == before - 1
        assert board not in controller.index.boards_by_id("XCVU37P")
        assert controller.index.check_consistent()
        controller.on_board_repair(board)
        assert controller.index.count_with_at_least("XCVU37P", 1) == before
        assert controller.index.check_consistent()

    def test_repair_reimages_failed_board(self, catalog):
        cluster, system = _system(catalog, recovery=False)
        controller = system.controller
        deployment, _ = controller.deploy("gru-h512-t1")
        board = cluster.board(deployment.placements[0].fpga_id)
        controller.on_board_failure(board)
        assert board.health is BoardHealth.FAILED
        assert board.used_blocks > 0  # blocks still attributed
        controller.on_board_repair(board)
        assert board.health is BoardHealth.HEALTHY
        assert board.used_blocks == 0  # re-imaged empty
        assert controller.index.check_consistent()
        # The stale deployment's later teardown is a harmless no-op.
        controller.evict(deployment)
        assert controller.index.check_consistent()


class TestCheckpointCadence:
    def test_last_checkpoint_arithmetic(self):
        deployment = Deployment(
            deployment_id="d", model_key="m", plan=None,
            checkpoint_origin_s=1.0,
        )
        assert deployment.last_checkpoint_s(1.24, 0.05) == pytest.approx(1.2)
        assert deployment.last_checkpoint_s(1.25, 0.05) == pytest.approx(1.25)
        assert deployment.last_checkpoint_s(0.5, 0.05) == 1.0  # before origin
        assert deployment.last_checkpoint_s(9.0, 0.0) == 1.0  # disabled


class TestRecovery:
    def test_idle_deployment_recovers_immediately(self, catalog):
        cluster, system = _system(catalog)
        controller = system.controller
        deployment, _ = controller.deploy("gru-h512-t1", now=0.0)
        failed_board = deployment.placements[0].fpga_id
        controller.on_board_failure(cluster.board(failed_board), now=0.13)
        stats = controller.stats
        assert stats.deployments_failed == 1
        assert stats.recoveries == 1
        assert deployment.deployment_id not in controller.deployments
        replacement = controller.find_idle_deployment("gru-h512-t1")
        assert replacement is not None
        assert failed_board not in replacement.member_fpgas
        assert replacement.recoveries == 1
        # Lost work = time since the last periodic checkpoint (50 ms grid).
        assert stats.lost_work_s == pytest.approx(0.03)
        assert controller.index.check_consistent()

    def test_busy_deployment_defers_recovery_to_release(self, catalog):
        cluster, system = _system(catalog)
        controller = system.controller
        deployment, _ = controller.deploy("gru-h512-t1", now=0.0)
        deployment.acquire()
        board = cluster.board(deployment.placements[0].fpga_id)
        controller.on_board_failure(board, now=0.01)
        # Not yanked mid-task: flagged, still accounted as failed.
        assert deployment.pending_recovery
        assert controller.stats.deployments_failed == 1
        assert controller.stats.recoveries == 0
        assert deployment.deployment_id in controller.deployments
        controller.release(deployment, now=0.02)
        assert controller.stats.recoveries == 1
        assert deployment.deployment_id not in controller.deployments
        replacement = controller.find_idle_deployment("gru-h512-t1")
        assert replacement is not None
        assert board.fpga_id not in replacement.member_fpgas

    def test_scale_down_fallback_when_same_width_cannot_fit(self, catalog):
        cluster, system = _system(catalog)
        controller = system.controller
        # lstm-h512-t25 plans: 1x5 VU37P (or 1x4 KU115), or 2x3 VU37P.
        cluster.board("ku115-0").allocate("blocker", 10)
        cluster.board("vu37p-1").allocate("blocker", 13)  # 3 free
        cluster.board("vu37p-2").allocate("blocker", 13)  # 3 free
        deployment, _ = controller.deploy("lstm-h512-t25", now=0.0)
        assert deployment.member_fpgas == ["vu37p-0"]
        assert deployment.plan.replicas == 1
        controller.on_board_failure(cluster.board("vu37p-0"), now=0.01)
        stats = controller.stats
        assert stats.recoveries == 1
        assert stats.scale_down_recoveries == 1
        replacement = controller.find_idle_deployment("lstm-h512-t25")
        assert replacement.plan.replicas == 2
        assert sorted(replacement.member_fpgas) == ["vu37p-1", "vu37p-2"]

    def test_recovery_abandoned_when_nothing_fits_synchronously(self, catalog):
        cluster, system = _system(catalog)
        controller = system.controller
        cluster.board("ku115-0").allocate("blocker", 10)
        cluster.board("vu37p-1").allocate("blocker", 14)  # 2 free
        cluster.board("vu37p-2").allocate("blocker", 14)  # 2 free
        deployment, _ = controller.deploy("lstm-h512-t25", now=0.0)
        controller.on_board_failure(cluster.board("vu37p-0"), now=0.01)
        stats = controller.stats
        # No simulator bound: no clock to back off on, so the failure is
        # counted immediately instead of retried.
        assert stats.recoveries == 0
        assert stats.recovery_failures == 1
        assert controller.find_idle_deployment("lstm-h512-t25") is None
        assert controller.index.check_consistent()

    def test_backoff_retries_succeed_when_capacity_returns(self, catalog):
        cluster, system = _system(catalog)
        controller = system.controller
        simulator = ClusterSimulator(system, "t")  # binds the DES
        cluster.board("ku115-0").allocate("blocker", 10)
        cluster.board("vu37p-1").allocate("blocker", 14)  # 2 free
        cluster.board("vu37p-2").allocate("blocker", 14)  # 2 free
        deployment, _ = controller.deploy("lstm-h512-t25", now=0.0)
        injector = FaultInjector(simulator, controller)
        injector.fail_board("vu37p-0", at=0.001)
        # Capacity returns mid-backoff: the blocker drains off vu37p-1.
        simulator.schedule_external(
            0.02, lambda now: cluster.board("vu37p-1").release("blocker")
        )
        simulator.queue.run()
        stats = controller.stats
        assert stats.recovery_retries >= 3
        assert stats.recovery_failures == 0
        assert stats.recoveries == 1
        replacement = controller.find_idle_deployment("lstm-h512-t25")
        assert replacement is not None
        assert replacement.state is DeploymentState.IDLE
        assert replacement.member_fpgas == ["vu37p-1"]

    def test_recovery_disabled_leaves_broken_deployment_alone(self, catalog):
        cluster, system = _system(catalog, recovery=False)
        controller = system.controller
        deployment, _ = controller.deploy("gru-h512-t1", now=0.0)
        board = cluster.board(deployment.placements[0].fpga_id)
        controller.on_board_failure(board, now=0.01)
        assert controller.stats.deployments_failed == 0
        assert deployment.deployment_id in controller.deployments
        assert not deployment.pending_recovery


class TestFaultInjector:
    def _armed(self, catalog, params):
        cluster, system = _system(catalog)
        simulator = ClusterSimulator(system, "t")
        injector = FaultInjector(simulator, system.controller, params)
        return cluster, system, simulator, injector

    def test_timeline_is_deterministic_per_seed(self, catalog):
        params = FaultModelParameters(mtbf_s=0.3, mttr_s=0.05, seed=11)
        counts = []
        for _ in range(2):
            _, _, _, injector = self._armed(catalog, params)
            counts.append(injector.arm(2.0))
        assert counts[0] == counts[1] > 0

    def test_bad_params_rejected(self, catalog):
        _, _, simulator, _ = self._armed(catalog, None)
        bad = FaultInjector(
            simulator, simulator.scheduler.controller,
            FaultModelParameters(mtbf_s=0.0),
        )
        with pytest.raises(SimulationError, match="positive"):
            bad.arm(1.0)

    def test_unknown_board_rejected(self, catalog):
        _, _, _, injector = self._armed(
            catalog, FaultModelParameters()
        )
        with pytest.raises(SimulationError):
            injector.fail_board("ghost", at=0.1)

    def test_availability_accounting(self, catalog):
        cluster, system = _system(catalog, recovery=False)
        simulator = ClusterSimulator(system, "t")
        injector = FaultInjector(simulator, system.controller)
        injector._fail("vu37p-0", False, 1.0)
        injector._repair("vu37p-0", 2.0)  # 1 s down
        injector._fail("vu37p-1", False, 3.0)  # still down at horizon
        # 2 board-seconds down out of 4 boards x 4 s.
        assert injector.availability(4.0) == pytest.approx(1.0 - 2.0 / 16.0)
        assert injector.failures_injected == 2
        assert injector.repairs_applied == 1

    def test_degraded_fraction_drains_instead_of_failing(self, catalog):
        cluster, system = _system(catalog)
        simulator = ClusterSimulator(system, "t")
        injector = FaultInjector(
            simulator, system.controller,
            FaultModelParameters(degraded_fraction=1.0),
        )
        injector._fail("vu37p-0", True, 0.5)
        board = cluster.board("vu37p-0")
        assert board.health is BoardHealth.DEGRADED
        assert system.controller.stats.boards_degraded == 1
        assert system.controller.stats.boards_failed == 0


class TestFaultsUnderSimulation:
    def _stream(self, count=36):
        keys = ("gru-h512-t1", "lstm-h256-t150", "lstm-h512-t25")
        return [
            Task(task_id=i, model_key=keys[i % 3], arrival_s=i * 0.004,
                 size_class="S")
            for i in range(count)
        ]

    def _run(self, catalog, mtbf_s=0.15, seed=7):
        cluster, system = _system(catalog)
        simulator = ClusterSimulator(system, "t")
        tasks = self._stream()
        injector = FaultInjector(
            simulator, system.controller,
            FaultModelParameters(mtbf_s=mtbf_s, mttr_s=0.05, seed=seed),
        )
        injector.arm(tasks[-1].arrival_s)
        result = simulator.run(tasks)
        return system.controller.stats, injector, result

    def test_all_tasks_complete_despite_faults(self, catalog):
        stats, injector, result = self._run(catalog)
        assert len(result.completed) == 36
        assert injector.failures_injected > 0
        assert stats.boards_failed == injector.failures_injected
        # Every lost deployment was either rebuilt or is retrying at exit.
        assert stats.recoveries + stats.recovery_failures > 0

    def test_fault_runs_are_reproducible(self, catalog):
        first = self._run(catalog)
        second = self._run(catalog)
        assert repr(first[2].makespan_s) == repr(second[2].makespan_s)
        assert first[0].recoveries == second[0].recoveries
        assert first[0].lost_work_s == second[0].lost_work_s
        assert first[1].availability(first[2].makespan_s) == pytest.approx(
            second[1].availability(second[2].makespan_s)
        )
