"""Shared fixtures for the test suite.

Provides small canonical designs (a lane-style accelerator in miniature),
small RNN models with real tensors, and pre-built catalogs — sized so the
whole suite stays fast while exercising every code path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accel import BW_V37, generate_accelerator, CONTROL_MODULES
from repro.accel.codegen import RNNWeights
from repro.core import decompose, partition
from repro.rtl.builder import DesignBuilder


@pytest.fixture
def mini_design():
    """A miniature lane-style accelerator: decoder (control) + 4 identical
    3-stage lanes.  Decomposes to DATA over per-lane PIPELINEs."""
    db = DesignBuilder("mini")

    m = db.module("decoder")
    m.inputs("clk", ("instr", 32)).outputs(("ctl", 16))
    m.instance("r0", "DFF", clk="clk")
    m.build()

    m = db.module("stage_a")
    m.inputs("clk", ("vin", 64)).outputs(("mid", 32))
    m.net("acc0", 24)
    m.instance("mac0", "BFP_MAC", clk="clk", acc_out="acc0")
    m.instance("mac1", "BFP_MAC", clk="clk", acc_in="acc0")
    m.build()

    m = db.module("stage_b")
    m.inputs("clk", ("mid", 32)).outputs(("acc", 24))
    m.instance("a0", "INT_ADD")
    m.build()

    m = db.module("stage_c")
    m.inputs("clk", ("acc", 24)).outputs(("res", 16))
    m.net("mo", 16)
    m.instance("m0", "FP16_MUL", clk="clk", y="mo")
    m.instance("a0", "FP16_ADD", clk="clk", a="mo")
    m.build()

    m = db.module("lane")
    m.inputs("clk", ("vin", 64)).outputs(("res", 16))
    m.nets(("mid", 32), ("acc", 24))
    m.instance("sa", "stage_a", clk="clk", vin="vin", mid="mid")
    m.instance("sb", "stage_b", clk="clk", mid="mid", acc="acc")
    m.instance("sc", "stage_c", clk="clk", acc="acc", res="res")
    m.build()

    m = db.module("top")
    m.inputs("clk", ("instr", 32), ("vec", 64))
    m.outputs(("out", 16))
    m.net("ctl", 16)
    m.instance("dec", "decoder", clk="clk", instr="instr", ctl="ctl")
    for index in range(4):
        m.net(f"res{index}", 16)
        m.instance(
            f"lane{index}", "lane", clk="clk", vin="vec", res=f"res{index}"
        )
    m.build()
    db.top("top")
    return db.build()


@pytest.fixture
def mini_decomposed(mini_design):
    """The miniature design decomposed (control = decoder)."""
    return decompose(mini_design, control_modules={"decoder"})


@pytest.fixture
def mini_partition(mini_decomposed):
    """Two-iteration partition tree of the miniature accelerator."""
    return partition(mini_decomposed, iterations=2)


@pytest.fixture(scope="session")
def small_accel_config():
    """A 4-tile instance — fast to generate/decompose in tests."""
    return BW_V37.with_tiles(4, name="test-4t")


@pytest.fixture(scope="session")
def small_accel_design(small_accel_config):
    return generate_accelerator(small_accel_config)


@pytest.fixture(scope="session")
def small_accel_decomposed(small_accel_design):
    return decompose(small_accel_design, CONTROL_MODULES)


@pytest.fixture(scope="session")
def gru_small():
    """A tiny GRU with real tensors (hidden=32) plus its input stream."""
    weights = RNNWeights.random("gru", 32, seed=11)
    xs = np.random.default_rng(12).normal(0.0, 0.5, (4, 32))
    return weights, xs


@pytest.fixture(scope="session")
def lstm_small():
    """A tiny LSTM with real tensors (hidden=32) plus its input stream."""
    weights = RNNWeights.random("lstm", 32, seed=21)
    xs = np.random.default_rng(22).normal(0.0, 0.5, (4, 32))
    return weights, xs
